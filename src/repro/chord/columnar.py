"""Flat-state live-protocol engine: fig5/6/7 at 100k+ live nodes.

The object-graph :class:`~repro.chord.node.ChordNode` spends most of its
time allocating: a ``Message``, an ``RpcContext``, a ``_Pending`` record,
dict-shaped request params and reply payloads, and a couple of closures
per routed message.  This module replays the *same* discrete-event
schedule with none of that: node state lives in parallel per-row arrays
(one row per node incarnation), routing entries are ``(node_id, row)``
int pairs, request/reply payloads are tuples, and every protocol event
is pushed straight into the kernel's heap as a raw ``(time, seq,
callback, args)`` entry.

Equivalence argument (tested bit-for-bit in
``tests/test_fig567_columnar_equivalence.py``):

* **Same kernel.**  There is no second scheduler: the engine pushes into
  ``Simulator._queue`` and burns sequence numbers from
  ``Simulator._next_seq`` at exactly the points the object engine
  allocates them (RPC failure timer before message send, ack before GC
  registration, reschedule after a periodic callback, ...).  Ordering
  and tie-breaking are therefore identical by construction.
* **Same randomness.**  Every ``random.Random`` draw (node ids, jitter,
  churn lifetimes, workload keys) happens on the same named registry
  stream, in the same order, as the object engine.
* **Same bytes.**  Message sizes and accounting categories are computed
  from the same constants at the same protocol points, including the
  quirk that error results are always accounted under the default
  ``"lookup"`` category.
* **Elision of invisible events.**  The only events not physically
  queued are (a) *cancelled-in-object* timers (never fire there either;
  the engine burns their seq and counts a ``phantom`` when a queued
  stand-in pops dead) and (b) *information-free* replies — per-hop acks,
  notify/ping replies — whose delivery provably mutates nothing and
  whose in-time arrival only cancels a failure timer.  Their bytes are
  accounted normally and they are tallied in ``elided`` so
  :meth:`ColumnarEngine.logical_events` reports the object engine's
  exact event count.

The bootstrap (successor/predecessor/finger fill for the initial
converged ring) is vectorized with numpy — ids sorted once, finger
owners for all nodes resolved with a single matrix ``searchsorted`` —
and falls back to the scalar :mod:`repro.overlay.snapshot` algorithms
for id spaces wider than 64 bits.
"""

from __future__ import annotations

import gc
import heapq
import math
from bisect import bisect_right
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..analysis.stats import LookupStats
from ..ids.sections import VermeIdLayout
from ..net.message import (
    ADDR_BYTES,
    CERT_BYTES,
    ID_BYTES,
    SEALED_OVERHEAD_BYTES,
    entry_bytes,
)
from ..net.network import CAUSE_DEAD, Network
from ..obs import OBS
from ..sim import RngRegistry, Simulator
from ..verme.fingers import verme_finger_target
from .config import OverlayConfig
from .lookup import LookupStyle
from .rpc import MIN_RPC_BYTES
from .state import NodeInfo

try:  # numpy is part of the baked toolchain, but keep a scalar fallback
    import numpy as np
except Exception:  # pragma: no cover
    np = None

# Lookup styles / purposes as plain ints (comparisons on the routing
# hot path; values mirror chord.lookup enums only by name).
_REC = 0
_TRANS = 1
_STYLES = {LookupStyle.RECURSIVE: _REC, LookupStyle.TRANSITIVE: _TRANS}

_P_JOIN = 0
_P_FINGER = 1
_P_DHT = 2

# Initiator-side lookup kinds (what _ev_done dispatches on).
_K_WORKLOAD = 0
_K_JOIN = 1
_K_REJOIN = 2
_K_FINGER = 3
_K_CB = 4

# Maintenance RPC kinds.
_M_STAB = 0  # get_neighbors from the stabilize loop (content reply)
_M_PRED = 1  # get_neighbors from the predecessor probe (content reply)
_M_PING = 2  # ping predecessor probe (info-free reply)
_M_NOTIFY = 3  # notify (info-free reply)

_NO_EXCLUDE: frozenset = frozenset()

_WORST_CASE_BANDWIDTH = 1e4  # bytes/s; mirrors ChordNode._WORST_CASE_BANDWIDTH


def _neg_distance(c):
    return c[0]


@contextmanager
def frozen_gc():
    """Run a simulation with the current heap frozen out of cyclic GC.

    A built engine holds tens of millions of long-lived, effectively
    acyclic objects (state arrays, routing entries, the pending-event
    queue), and every generation-2 collection rescans them all: at 100k
    rows the collector accounts for roughly half of wall time.
    Freezing moves the built heap into the permanent generation and a
    raised gen-0 threshold keeps the young-object churn of the event
    loop from triggering collections every few hundred allocations.
    The collector stays *enabled* — cycle garbage created during the
    run is still reclaimed, just in larger batches — and thresholds and
    the frozen heap are restored on exit, so tests that run many cells
    in one process do not accumulate permanent objects.
    """
    gc.collect()
    gc.freeze()
    old = gc.get_threshold()
    gc.set_threshold(500_000, 100, 100)
    try:
        yield
    finally:
        gc.set_threshold(*old)
        gc.unfreeze()


class _Lookup:
    """Initiator-side pending lookup (mirrors node._PendingLookup)."""

    __slots__ = (
        "row",
        "key",
        "style",
        "purpose",
        "category",
        "op_tag",
        "meta",
        "extra",
        "started_at",
        "first_hop",
        "attempts",
        "token",
        "failed",
        "kind",
        "k",
        "done_cb",
    )


class _Membership:
    """What the invariant checker sees: a sized population exposing a
    snapshot hook built from the engine's state arrays."""

    def __init__(self, engine: "ColumnarEngine") -> None:
        self._engine = engine

    def __len__(self) -> int:
        return len(self._engine.order)

    def ring_snapshot(self, now: float):
        return self._engine.ring_snapshot(now)


class ColumnarEngine:
    """Runs an entire Chord/Verme overlay out of per-row state arrays.

    One instance replaces the per-node object graph (nodes, RPC layers,
    timers, drivers).  Construction order mirrors the object path:
    ``build`` (id draws + instant bootstrap + timer starts), then
    ``start_churn``, then ``start_workload``.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: OverlayConfig,
        layout: Optional[VermeIdLayout] = None,
    ) -> None:
        if network.contended_uplinks:
            raise ValueError("columnar engine does not support contended uplinks")
        if network.loss_rate:
            raise ValueError("columnar engine does not support message loss")
        if network.fault_plan is not None:
            raise ValueError("columnar engine does not support fault plans")
        if config.rpc_max_retransmits:
            raise ValueError("columnar engine does not support rpc retransmits")
        self._sim = sim
        self._net = network
        self._config = config
        self._layout = layout
        self._verme = layout is not None

        space = config.space
        self._bits = space.bits
        self._mask = space.mask
        self._num_succ = config.num_successors
        self._pred_limit = config.num_predecessors if self._verme else 1
        self._stab_interval = config.stabilize_interval_s
        self._fing_interval = config.finger_interval_s
        self._rpc_to = config.rpc_timeout_s
        self._lookup_to = config.lookup_timeout_s
        self._retries = config.lookup_retries
        self._max_hops = config.max_lookup_hops
        self._gc_s = config.pending_route_gc_s
        self._rejoin_delay = 2.0  # ChurnDriver default
        self._entry_bytes = entry_bytes()
        self._req_extra = CERT_BYTES if self._verme else 0
        self._res_extra = SEALED_OVERHEAD_BYTES if self._verme else 0
        self._fwd_base = MIN_RPC_BYTES + ID_BYTES + self._req_extra
        if self._verme:
            self._shift = layout.section_bits
            self._tmask = layout.num_types - 1
            self._num_sections = layout.num_sections
            self._high_bits = layout.high_bits
            self._section_bits = layout.section_bits

        # Accounting dicts, bound once (Network.send inlines the same).
        acct = network.accounting
        self._acct_b = acct.bytes_by_category
        self._acct_m = acct.messages_by_category
        self._acct_o = acct.bytes_by_op

        # Latency: matrix models get the same per-source row cache as
        # Network.send; KingCoordinates shares the model's own pair
        # memo (values are deterministic, so cached vs recomputed is
        # bit-identical), with a size cap so a 100k-host run cannot
        # grow the memo without bound.
        model = network.latency_model
        self._lat_row_fn = getattr(model, "row", None)
        self._lat_rows: Optional[Dict[int, object]] = (
            {} if self._lat_row_fn is not None else None
        )
        self._king = None
        # Pair-latency memo bound: the steady working set is about
        # peers-per-node (~succ + pred + log2 n fingers, both
        # directions) times hosts — ~6M pairs at 100k nodes — and a cap
        # below it causes periodic clear/recompute storms, so size for
        # the 100k tier (~60 B/entry -> ~1 GiB ceiling).
        self._king_cache_cap = 16_000_000
        if self._lat_rows is None:
            if hasattr(model, "_points") and hasattr(model, "_scale"):
                self._king = (
                    model._cache,
                    model.num_hosts,
                    model._points,
                    model._out,
                    model._in,
                    model.floor_s,
                    model._scale,
                )
            else:
                self._lat_scalar = model.latency

        # Bandwidth: the engine mirrors Network.send's uncontended
        # path (delivery delay = latency + size / bandwidth when the
        # pair's bandwidth is non-zero).  ``None`` when the network has
        # no bandwidth model, so the fig5 hot path pays one attribute
        # load + ``is None`` per send.
        bw_model = network.bandwidth_model
        self._bw = bw_model.bandwidth if bw_model is not None else None

        # -- per-row (per node incarnation) state arrays ------------------
        self.node_id: List[int] = []
        self.host: List[int] = []
        self.inc: List[int] = []
        self.alive = bytearray()
        self.succs: List[List[tuple]] = []  # entries: (node_id, row)
        self.sver: List[int] = []
        self.preds: List[List[tuple]] = []
        self.pver: List[int] = []
        self.fingers: List[dict] = []  # {k: entry}, insertion-ordered
        self.fver: List[int] = []
        self.rejoin: List[List[int]] = []  # bootstrap contact rows
        self.rejoin_next: List[int] = []
        self.tok: List[int] = []  # per-row token counters
        self.lookups: List[dict] = []  # {token: _Lookup}
        self.forwards: List[dict] = []  # {token: (upstream_row, params)}
        self.jitter: List[object] = []
        # Routing-candidate cache (mirrors the object node's bisect cache).
        self.cand_keys: List[Optional[list]] = []
        self.cand_infos: List[Optional[list]] = []
        self.cand_fver: List[int] = []
        self.cand_sver: List[int] = []
        # Serving-layer admission state (repro.chord.admission), one
        # slot per row; all-None = unlimited capacity, the paper's model.
        self.adm: List = []

        self.order: List[int] = []  # population rows, insertion order
        self._used_ids: set = set()
        self._rngs: Optional[RngRegistry] = None
        self._id_rng = None

        # churn / workload
        self._churn_rng = None
        self._mean_lifetime = 0.0
        self.deaths = 0
        self.joins = 0
        self.failed_joins = 0
        self._wl_rng = None
        self._wl_style = _REC
        self._wl_interval = 30.0
        self._stats: Optional[LookupStats] = None
        self._wl_gen = None  # optional repro.workload.LookupGenerator
        self._adm_factory = None  # per-row NodeAdmission factory

        # logical event bookkeeping
        self.elided = 0  # invisible replies that would fire <= horizon
        self.phantom = 0  # queued stand-ins for object-cancelled events
        self._future_elided: List[float] = []  # beyond-horizon reply times

        # Route-GC calendar: the constant gc delay makes expirations
        # FIFO, so instead of one heap event per accepted forward we
        # keep (expire, seq, row, token) in a deque and chain a single
        # sweep event through it, re-using each entry's burned seq so
        # (time, seq) of any GC event that actually fires matches the
        # object kernel exactly.
        self._gc_queue: deque = deque()
        self._gc_armed = False

        # Verme finger-target memo for terminal verification: the 64
        # targets of an initiator id, computed once per row on demand.
        self._ftargets: Dict[int, frozenset] = {}

        self.population = _Membership(self)

    # -- small helpers ------------------------------------------------------

    def _latency(self, a: int, b: int) -> float:
        rows = self._lat_rows
        if rows is not None:
            try:
                return rows[a][b]
            except KeyError:
                return rows.setdefault(a, self._lat_row_fn(a))[b]
        king = self._king
        if king is None:
            return self._lat_scalar(a, b)
        if a == b:
            return 0.0
        cache, num_hosts, points, out, incoming, floor_s, scale = king
        key = a * num_hosts + b
        value = cache.get(key)
        if value is not None:
            return value
        pa = points[a]
        pb = points[b]
        total = 0.0
        for i in range(len(pa)):
            d = pa[i] - pb[i]
            total += d * d
        one_way = math.sqrt(total) * out[a] * incoming[b]
        if one_way < floor_s:
            one_way = floor_s
        value = one_way * scale
        if len(cache) >= self._king_cache_cap:
            cache.clear()
        cache[key] = value
        return value

    def _delay(self, a: int, b: int, size: int) -> float:
        """Delivery delay with a bandwidth model: Network.send's
        uncontended ``latency + size / bandwidth`` (zero-bandwidth
        pairs fall back to pure latency, as there)."""
        lat = self._latency(a, b)
        bw = self._bw(a, b)
        if bw:
            lat = lat + size / bw
        return lat

    def _push(self, delay: float, cb, args) -> None:
        sim = self._sim
        seq = sim._next_seq
        sim._next_seq = seq + 1
        heapq.heappush(sim._queue, (sim._now + delay, seq, cb, args))
        sim._live += 1

    def info_of(self, row: int) -> NodeInfo:
        from ..net.addressing import NodeAddress

        return NodeInfo(self.node_id[row], NodeAddress(self.host[row], self.inc[row]))

    def logical_events(self, upto: float) -> int:
        """The object engine's ``sim.events_processed`` for this run:
        kernel events, plus elided replies due by ``upto``, minus queued
        stand-ins for events the object engine cancelled."""
        fut = self._future_elided
        while fut and fut[0] <= upto:
            heapq.heappop(fut)
            self.elided += 1
        return self._sim._events_processed + self.elided - self.phantom

    # -- build: id draws, bootstrap, timer starts ---------------------------

    def _create_row(self, host: int, inc: int) -> int:
        rngs = self._rngs
        idrng = self._id_rng
        used = self._used_ids
        if self._verme:
            node_type = host % 2  # VermeNodeFactory.type_for_host
            layout = self._layout
            while True:
                nid = layout.random_id(idrng, node_type)
                if nid not in used:
                    used.add(nid)
                    break
        else:
            bits = self._bits
            while True:
                nid = idrng.getrandbits(bits)
                if nid not in used:
                    used.add(nid)
                    break
        row = len(self.node_id)
        self.node_id.append(nid)
        self.host.append(host)
        self.inc.append(inc)
        self.alive.append(0)
        self.succs.append([])
        self.sver.append(0)
        self.preds.append([])
        self.pver.append(0)
        self.fingers.append({})
        self.fver.append(0)
        self.rejoin.append([])
        self.rejoin_next.append(0)
        self.tok.append(0)
        self.lookups.append({})
        self.forwards.append({})
        self.jitter.append(rngs.stream(f"jitter-{host}-{inc}"))
        self.cand_keys.append(None)
        self.cand_infos.append(None)
        self.cand_fver.append(-1)
        self.cand_sver.append(-1)
        factory = self._adm_factory
        self.adm.append(factory() if factory is not None else None)
        return row

    def build(self, num_nodes: int, rngs: RngRegistry) -> None:
        """Create the initial population: same id stream, same jitter
        streams, same converged routing state, same timer start seqs as
        ``build_ring`` + ``instant_bootstrap``."""
        self._rngs = rngs
        self._id_rng = rngs.stream("node-ids")
        for slot in range(num_nodes):
            self._create_row(slot, 0)
        self._instant_bootstrap(num_nodes)
        # start_static per node, in creation order: stabilize timer then
        # finger timer, each with one jitter draw (PeriodicTimer.start).
        cb_stab = self._ev_stab
        cb_fing = self._ev_fing
        for row in range(num_nodes):
            self.alive[row] = 1
            jr = self.jitter[row]
            self._push(self._stab_interval * jr.random(), cb_stab, (row,))
            self._push(self._fing_interval * jr.random(), cb_fing, (row,))
            self.order.append(row)

    def _instant_bootstrap(self, n: int) -> None:
        ids = self.node_id
        order = sorted(range(n), key=ids.__getitem__)
        sorted_ids = [ids[r] for r in order]
        entries_sorted = [(ids[r], r) for r in order]
        cs = min(self._num_succ, n - 1)
        cp = min(self._pred_limit, n - 1)
        for i, row in enumerate(order):
            succ = [entries_sorted[(i + 1 + j) % n] for j in range(cs)]
            pred = [entries_sorted[(i - 1 - j) % n] for j in range(cp)]
            self.succs[row] = succ
            self.sver[row] = 1 if succ else 0
            self.preds[row] = pred
            self.pver[row] = 1 if pred else 0
        if np is not None and self._bits <= 64 and n > 1:
            self._bootstrap_fingers_numpy(order, sorted_ids, entries_sorted)
        else:
            self._bootstrap_fingers_scalar(order, sorted_ids, entries_sorted)
        for row in range(n):
            self.fver[row] = len(self.fingers[row])

    def _bootstrap_fingers_scalar(self, order, sorted_ids, entries_sorted) -> None:
        from bisect import bisect_left

        n = len(order)
        mask = self._mask
        bits = self._bits
        verme = self._verme
        layout = self._layout
        shift = self._shift if verme else 0
        for i, row in enumerate(order):
            own = sorted_ids[i]
            span = (sorted_ids[(i + 1) % n] - own) & mask
            fdict = self.fingers[row]
            for k in range(span.bit_length(), bits):
                if verme:
                    target = verme_finger_target(layout, own, k)
                else:
                    target = (own + (1 << k)) & mask
                j = bisect_left(sorted_ids, target)
                oi = j % n
                if verme and (sorted_ids[oi] >> shift) != (target >> shift):
                    oi = (j - 1) % n
                owner = entries_sorted[oi]
                if owner[0] == own:
                    continue
                if verme:
                    oid = owner[0]
                    if (oid >> shift) != (own >> shift) and (
                        (oid >> shift) & self._tmask
                    ) == ((own >> shift) & self._tmask):
                        continue  # same-type foreign section: disallowed
                fdict[k] = owner

    def _bootstrap_fingers_numpy(self, order, sorted_ids, entries_sorted) -> None:
        """All finger owners in one matrix searchsorted (ISSUE tentpole
        kernel); validated against the scalar path in the test suite."""
        n = len(order)
        bits = self._bits
        ids_u = np.array(sorted_ids, dtype=np.uint64)
        spans = (np.roll(ids_u, -1) - ids_u).astype(np.uint64)
        if bits < 64:
            spans &= np.uint64(self._mask)
        kmin = int(spans.min()).bit_length()
        if kmin >= bits:
            return
        ks = np.arange(kmin, bits, dtype=np.uint64)
        steps = (np.uint64(1) << ks).astype(np.uint64)
        raw = ids_u[:, None] + steps[None, :]
        if bits < 64:
            raw &= np.uint64(self._mask)
        if self._verme:
            shift = np.uint64(self._shift)
            own_sec = ids_u >> shift
            raw_sec = raw >> shift
            next_sec = (own_sec + np.uint64(1)) % np.uint64(self._num_sections)
            tmask = np.uint64(self._tmask)
            keep = (raw_sec == own_sec[:, None]) | (raw_sec == next_sec[:, None])
            same_type = (raw_sec & tmask) == (own_sec[:, None] & tmask)
            displaced = raw + np.uint64(1 << self._section_bits)
            if bits < 64:
                displaced &= np.uint64(self._mask)
            targets = np.where(keep | ~same_type, raw, displaced)
        else:
            targets = raw
        j = np.searchsorted(ids_u, targets.ravel(), side="left").reshape(targets.shape)
        oi = j % n
        if self._verme:
            shift = np.uint64(self._shift)
            owner_sec = ids_u[oi] >> shift
            target_sec = targets >> shift
            oi = np.where(owner_sec == target_sec, oi, (j - 1) % n)
        owner_ids = ids_u[oi]
        active = steps[None, :] > spans[:, None]
        ok = active & (owner_ids != ids_u[:, None])
        if self._verme:
            shift = np.uint64(self._shift)
            tmask = np.uint64(self._tmask)
            osec = owner_ids >> shift
            nsec = (ids_u >> shift)[:, None]
            allowed = (osec == nsec) | ((osec & tmask) != (nsec & tmask))
            ok &= allowed
        oi_l = oi.tolist()
        ok_l = ok.tolist()
        for i in range(n):
            fdict = self.fingers[order[i]]
            row_ok = ok_l[i]
            row_oi = oi_l[i]
            for jx in range(len(row_ok)):
                if row_ok[jx]:
                    fdict[kmin + jx] = entries_sorted[row_oi[jx]]

    # -- drivers ------------------------------------------------------------

    def start_churn(self, rng, mean_lifetime_s: float) -> None:
        """Mirrors ChurnDriver.start: one lifetime draw + kill event per
        alive node, in population order."""
        self._churn_rng = rng
        self._mean_lifetime = mean_lifetime_s
        cb = self._ev_kill
        for row in list(self.order):
            self._push(rng.expovariate(1.0 / mean_lifetime_s), cb, (row,))

    def set_admission(self, factory) -> None:
        """Install a per-node admission factory (call before build):
        every row — initial population and churn respawns — gets its own
        ``NodeAdmission`` from ``factory()``, mirroring the object
        experiment wrapping its node factory."""
        if self.node_id:
            raise RuntimeError("set_admission must precede build()")
        self._adm_factory = factory

    def start_workload(
        self,
        rng,
        style: LookupStyle,
        mean_interval_s: float,
        stats: LookupStats,
        warmup_s: float,
        generator=None,
    ) -> None:
        """Mirrors LookupWorkload.start (aggregate Poisson process, or
        the supplied ``repro.workload`` generator's keys and rates)."""
        self._wl_rng = rng
        self._wl_style = _STYLES[style]
        self._wl_interval = mean_interval_s
        self._stats = stats
        self._wl_gen = generator
        if generator is not None:
            delay = generator.next_delay(rng, self._sim._now, len(self.order))
        else:
            delay = rng.expovariate(max(1, len(self.order)) / mean_interval_s)
        self._push(max(warmup_s, delay), self._ev_fire, ())

    # -- periodic / driver events -------------------------------------------

    def _ev_stab(self, row: int) -> None:
        if not self.alive[row]:
            self.phantom += 1  # object timer was stopped at crash
            return
        self._stabilize(row)
        self._push(self._stab_interval, self._ev_stab, (row,))

    def _ev_fing(self, row: int) -> None:
        if not self.alive[row]:
            self.phantom += 1
            return
        self._fix_fingers(row)
        self._push(self._fing_interval, self._ev_fing, (row,))

    def _ev_kill(self, row: int) -> None:
        if not self.alive[row]:
            return  # object _kill fires and returns (never cancelled)
        self.order.remove(row)
        # crash(): timers stop (their queued events pop as phantoms),
        # pending lookups and forward state vanish, rpc shuts down.
        self.alive[row] = 0
        self.lookups[row] = {}
        self.forwards[row] = {}
        self.deaths += 1
        inv = OBS.invariants
        if inv is not None:
            inv.note_membership(self._sim)
        self._push(
            self._rejoin_delay, self._ev_respawn, (self.host[row], self.inc[row] + 1)
        )

    def _ev_respawn(self, host: int, inc: int) -> None:
        order = self.order
        if not order:
            self._push(self._rejoin_delay, self._ev_respawn, (host, inc))
            return
        boot = self._churn_rng.choice(order)
        row = self._create_row(host, inc)
        self.alive[row] = 1
        self.rejoin[row] = [boot]
        self._lookup(
            row,
            self.node_id[row],
            _K_JOIN,
            _P_JOIN,
            "maintenance",
            first_hop=boot,
        )

    def _ev_fire(self) -> None:
        # RNG draw order (choice, key, delay) must match
        # LookupWorkload._fire / _next_delay exactly.
        order = self.order
        rng = self._wl_rng
        gen = self._wl_gen
        if order:
            row = rng.choice(order)
            if self.alive[row]:
                if gen is not None:
                    key = gen.draw_key(rng)
                else:
                    key = rng.getrandbits(self._bits)
                self._lookup(
                    row, key, _K_WORKLOAD, _P_DHT, "lookup", style=self._wl_style
                )
        if gen is not None:
            delay = gen.next_delay(rng, self._sim._now, len(order))
        else:
            delay = rng.expovariate(max(1, len(order)) / self._wl_interval)
        self._push(delay, self._ev_fire, ())

    # -- stabilization ------------------------------------------------------

    def _stabilize(self, row: int) -> None:
        succs = self.succs[row]
        if not succs:
            preds = self.preds[row]
            if preds:
                self._merge_succ(row, [preds[0]])
                return
            contacts = [e[1] for e in self.fingers[row].values()]
            for r in self.rejoin[row]:
                if r not in contacts:
                    contacts.append(r)
            if contacts:
                hop = contacts[self.rejoin_next[row] % len(contacts)]
                self.rejoin_next[row] += 1
                self._lookup(
                    row,
                    self.node_id[row],
                    _K_REJOIN,
                    _P_JOIN,
                    "maintenance",
                    first_hop=hop,
                )
            return
        succ = succs[0]
        self.rejoin[row] = [e[1] for e in succs]
        self._call_info(row, succ, _M_STAB)
        preds = self.preds[row]
        if preds:
            pred = preds[0]
            self._call_info(row, pred, _M_PRED if self._pred_limit > 1 else _M_PING)

    def _call_info(self, src_row: int, dst_entry: tuple, which: int) -> None:
        """rpc.call for the info-carrying maintenance methods: burn the
        failure-timer seq, account + send the request."""
        sim = self._sim
        seq = sim._next_seq  # timer seq (materialized only if needed)
        sim._next_seq = seq + 2  # + request send seq
        size = MIN_RPC_BYTES + self._entry_bytes if which == _M_NOTIFY else MIN_RPC_BYTES
        self._acct_b["maintenance"] += size
        self._acct_m["maintenance"] += 1
        deadline = sim._now + self._rpc_to
        t = sim._now + (
            self._latency(self.host[src_row], self.host[dst_entry[1]])
            if self._bw is None
            else self._delay(self.host[src_row], self.host[dst_entry[1]], size)
        )
        heapq.heappush(
            sim._queue,
            (t, seq + 1, self._ev_req, (src_row, dst_entry, deadline, seq, which)),
        )
        sim._live += 1

    def _ev_req(
        self, src_row: int, dst_entry: tuple, deadline: float, timer_seq: int, which: int
    ) -> None:
        dst_row = dst_entry[1]
        sim = self._sim
        if not self.alive[dst_row]:
            self._net._drop(CAUSE_DEAD)
            heapq.heappush(
                sim._queue, (deadline, timer_seq, self._ev_to_dead, (src_row, dst_entry))
            )
            sim._live += 1
            return
        if which == _M_NOTIFY:
            cand = (self.node_id[src_row], src_row)
            if cand[0] != self.node_id[dst_row]:
                self._merge_pred(dst_row, (cand,))
            self._reply_info_free(src_row, dst_row, deadline, timer_seq, dst_entry)
            return
        if which == _M_PING:
            self._reply_info_free(src_row, dst_row, deadline, timer_seq, dst_entry)
            return
        # get_neighbors: content reply, always materialized; payload and
        # size are snapshotted at respond time, as the object handler does.
        succs = self.succs[dst_row]
        preds = self.preds[dst_row]
        size = MIN_RPC_BYTES + (len(succs) + len(preds)) * self._entry_bytes
        seq = sim._next_seq
        sim._next_seq = seq + 1
        self._acct_b["maintenance"] += size
        self._acct_m["maintenance"] += 1
        t = sim._now + (
            self._latency(self.host[dst_row], self.host[src_row])
            if self._bw is None
            else self._delay(self.host[dst_row], self.host[src_row], size)
        )
        payload = (preds[0] if preds else None, tuple(succs), tuple(preds))
        late = not (t < deadline)
        heapq.heappush(
            sim._queue,
            (t, seq, self._ev_gn_reply, (src_row, dst_entry, which, payload, late)),
        )
        sim._live += 1
        if late:
            heapq.heappush(
                sim._queue, (deadline, timer_seq, self._ev_to_dead, (src_row, dst_entry))
            )
            sim._live += 1

    def _reply_info_free(
        self, src_row: int, dst_row: int, deadline: float, timer_seq: int, dst_entry: tuple
    ) -> None:
        """A reply that provably mutates nothing at the caller (ack of a
        notify/ping).  In-time under a run horizon: elide it (and the
        failure timer the object engine cancels).  Late: materialize both."""
        sim = self._sim
        seq = sim._next_seq
        sim._next_seq = seq + 1
        self._acct_b["maintenance"] += MIN_RPC_BYTES
        self._acct_m["maintenance"] += 1
        t = sim._now + (
            self._latency(self.host[dst_row], self.host[src_row])
            if self._bw is None
            else self._delay(self.host[dst_row], self.host[src_row], MIN_RPC_BYTES)
        )
        if t < deadline:
            h = sim._run_until
            if h is None:
                heapq.heappush(sim._queue, (t, seq, self._ev_noop, (src_row,)))
                sim._live += 1
            elif t <= h:
                self.elided += 1
            else:
                heapq.heappush(self._future_elided, t)
        else:
            heapq.heappush(sim._queue, (t, seq, self._ev_noop, (src_row,)))
            heapq.heappush(
                sim._queue, (deadline, timer_seq, self._ev_to_dead, (src_row, dst_entry))
            )
            sim._live += 2

    def _ev_noop(self, dst_row: int) -> None:
        # A materialized info-free reply: delivery to a dead caller is a
        # drop; to a live caller it only cancels the rpc failure timer.
        if not self.alive[dst_row]:
            self._net._drop(CAUSE_DEAD)

    def _ev_to_dead(self, src_row: int, dst_entry: tuple) -> None:
        # Maintenance rpc failure timer; on_error == _neighbor_dead(dst).
        if not self.alive[src_row]:
            self.phantom += 1  # rpc.shutdown cancelled it at crash
            return
        self._neighbor_dead(src_row, dst_entry[1])

    def _ev_gn_reply(
        self, src_row: int, dst_entry: tuple, which: int, payload: tuple, late: bool
    ) -> None:
        if not self.alive[src_row]:
            self._net._drop(CAUSE_DEAD)
            return
        if late:
            return  # rpc layer already timed the request out
        if which == _M_STAB:
            self._stabilize_reply(src_row, dst_entry, payload)
        else:
            self._pred_reply(src_row, dst_entry, payload)

    def _stabilize_reply(self, row: int, succ_entry: tuple, payload: tuple) -> None:
        pred0, succ_t, _pred_t = payload
        candidates = [succ_entry]
        candidates.extend(succ_t)
        if pred0 is not None:
            a = self.node_id[row]
            b = succ_entry[0]
            x = pred0[0]
            mask = self._mask
            if (x != a) if a == b else 0 < (x - a) & mask < (b - a) & mask:
                candidates.append(pred0)
        self._merge_succ(row, candidates)
        succs = self.succs[row]
        if succs:
            self._call_info(row, succs[0], _M_NOTIFY)

    def _pred_reply(self, row: int, pred_entry: tuple, payload: tuple) -> None:
        _pred0, _succ_t, pred_t = payload
        if pred_t:
            candidates = [pred_entry]
            candidates.extend(pred_t)
            self._merge_pred(row, candidates)

    # -- neighbor lists (mirrors chord.state.NeighborList) ------------------

    def _merge_succ(self, row: int, candidates) -> None:
        cur = self.succs[row]
        own = self.node_id[row]
        by_id = {e[0]: e for e in cur}
        for e in candidates:
            if e[0] != own:
                by_id[e[0]] = e
        mask = self._mask
        new = sorted(by_id.values(), key=lambda e: (e[0] - own) & mask)[
            : self._num_succ
        ]
        if new != cur:
            self.succs[row] = new
            self.sver[row] += 1

    def _merge_pred(self, row: int, candidates) -> None:
        cur = self.preds[row]
        own = self.node_id[row]
        by_id = {e[0]: e for e in cur}
        for e in candidates:
            if e[0] != own:
                by_id[e[0]] = e
        mask = self._mask
        new = sorted(by_id.values(), key=lambda e: (own - e[0]) & mask)[
            : self._pred_limit
        ]
        if new != cur:
            self.preds[row] = new
            self.pver[row] += 1

    def _replace_succ(self, row: int, entries) -> None:
        had = bool(self.succs[row])
        self.succs[row] = []
        self._merge_succ(row, entries)
        if had and not self.succs[row]:
            self.sver[row] += 1  # replace() bumps when non-empty -> empty

    def _neighbor_dead(self, row: int, dead_row: int) -> None:
        s = self.succs[row]
        kept = [e for e in s if e[1] != dead_row]
        if len(kept) != len(s):
            self.succs[row] = kept
            self.sver[row] += 1
        p = self.preds[row]
        kept = [e for e in p if e[1] != dead_row]
        if len(kept) != len(p):
            self.preds[row] = kept
            self.pver[row] += 1
        self._fingers_remove(row, dead_row)

    def _fingers_remove(self, row: int, dead_row: int) -> None:
        f = self.fingers[row]
        dead = [k for k, e in f.items() if e[1] == dead_row]
        if dead:
            for k in dead:
                del f[k]
            self.fver[row] += 1

    # -- fingers ------------------------------------------------------------

    def _finger_target(self, own: int, k: int) -> int:
        if self._verme:
            return verme_finger_target(self._layout, own, k)
        return (own + (1 << k)) & self._mask

    def _fix_fingers(self, row: int) -> None:
        succs = self.succs[row]
        if not succs:
            return
        own = self.node_id[row]
        span = (succs[0][0] - own) & self._mask
        for k in range(span.bit_length(), self._bits):
            self._lookup(
                row,
                self._finger_target(own, k),
                _K_FINGER,
                _P_FINGER,
                "maintenance",
                k=k,
            )

    def _finger_fixed(self, row: int, k: int, success: bool, entries) -> None:
        if not self.alive[row]:
            return
        if success and entries:
            e = entries[0]
            if self._verme:
                shift = self._shift
                eid = e[0]
                own = self.node_id[row]
                if (eid >> shift) != (own >> shift) and (
                    (eid >> shift) & self._tmask
                ) == ((own >> shift) & self._tmask):
                    return  # VermeNode._finger_fixed containment refusal
            if e[0] != self.node_id[row]:
                f = self.fingers[row]
                if f.get(k) != e:
                    f[k] = e
                    self.fver[row] += 1

    # -- lookup initiation ---------------------------------------------------

    def _lookup(
        self,
        row: int,
        key: int,
        kind: int,
        purpose: int,
        category: str,
        op_tag=None,
        meta=None,
        extra: int = 0,
        first_hop: Optional[int] = None,
        k: int = -1,
        style: Optional[int] = None,
        done_cb=None,
    ) -> None:
        sim = self._sim
        st = _Lookup()
        st.row = row
        st.key = key
        st.style = style if style is not None else _REC  # maintenance_style
        st.purpose = purpose
        st.category = category
        st.op_tag = op_tag
        st.meta = meta
        st.extra = extra
        st.started_at = sim._now
        st.first_hop = first_hop
        st.attempts = 0
        st.token = None
        st.failed = None
        st.kind = kind
        st.k = k
        st.done_cb = done_cb
        seq = sim._next_seq
        sim._next_seq = seq + 1
        heapq.heappush(
            sim._queue, (sim._now + self._lookup_to, seq, self._ev_lt, (st,))
        )
        sim._live += 1
        self._attempt(st)

    def _ev_lt(self, st: _Lookup) -> None:
        # Attempt timeout.  _finish and crash both cancel this in the
        # object engine, so a stale pop is always a phantom.
        row = st.row
        if st.token is None or st.token not in self.lookups[row]:
            self.phantom += 1
            return
        if st.attempts > self._retries:
            self._finish(st, None, 0, "timeout", None)
            return
        sim = self._sim
        seq = sim._next_seq
        sim._next_seq = seq + 1
        heapq.heappush(
            sim._queue, (sim._now + self._lookup_to, seq, self._ev_lt, (st,))
        )
        sim._live += 1
        self._attempt(st)

    def _attempt(self, st: _Lookup) -> None:
        row = st.row
        if not self.alive[row]:
            return
        st.attempts += 1
        lk = self.lookups[row]
        if st.token is not None:
            lk.pop(st.token, None)
        c = self.tok[row]
        self.tok[row] = c + 1
        token = (row, c)
        st.token = token
        lk[token] = st
        if st.first_hop is not None:
            self._send_forward(st, token, st.first_hop, 1)
            return
        done, owner_self, nxt = self._route_next(row, st.key, st.failed or _NO_EXCLUDE)
        if done:
            self._complete_local(st, owner_self)
            return
        if nxt is None:
            self._finish(st, None, 0, "no route", None)
            return
        self._send_forward(st, token, nxt[1], 1)

    def _retry(self, st: _Lookup) -> None:
        if st.attempts > self._retries:
            self._finish(st, None, 0, "retries exhausted", None)
            return
        self._attempt(st)

    def _complete_local(self, st: _Lookup, owner_self: bool) -> None:
        row = st.row
        err = self._verify_core(row, row, st.key, st.purpose, st.meta)
        if err is not None:
            self._finish(st, None, 0, err, None)
            return
        entries = self._entries_for_key(row, st.key, st.purpose, owner_self)
        if st.purpose == _P_DHT and st.meta is not None:
            hook = self._dht_hook(row)
            if hook is not None:
                self._hook_local(st, hook, entries)
                return
        self._finish(st, entries, 0, None, None)

    def _finish(self, st, entries, hops, error, app_payload) -> None:
        row = st.row
        if st.token is not None:
            self.lookups[row].pop(st.token, None)
        success = error is None and entries is not None
        sim = self._sim
        latency = sim._now - st.started_at
        seq = sim._next_seq
        sim._next_seq = seq + 1
        heapq.heappush(
            sim._queue,
            (sim._now, seq, self._ev_done, (st, success, entries, latency, hops, error, app_payload)),
        )
        sim._live += 1

    def _ev_done(self, st, success, entries, latency, hops, error, app_payload) -> None:
        kind = st.kind
        if kind == _K_WORKLOAD:
            self._stats.record(success, latency, hops)
        elif kind == _K_FINGER:
            self._finger_fixed(st.row, st.k, success, entries)
        elif kind == _K_JOIN:
            self._join_done(st, success, entries)
        elif kind == _K_REJOIN:
            self._rejoin_done(st.row, success, entries)
        else:
            st.done_cb(st, success, entries, latency, hops, error, app_payload)

    def _join_done(self, st, success, entries) -> None:
        row = st.row
        if not self.alive[row]:
            return
        if not success or not entries:
            self.alive[row] = 0
            self.failed_joins += 1
            self._push(
                self._rejoin_delay,
                self._ev_respawn,
                (self.host[row], self.inc[row] + 1),
            )
            return
        self._replace_succ(row, entries)
        jr = self.jitter[row]
        self._push(self._stab_interval * jr.random(), self._ev_stab, (row,))
        self._push(self._fing_interval * jr.random(), self._ev_fing, (row,))
        self._stabilize(row)
        self._fix_fingers(row)
        # ChurnDriver._joined(ok=True)
        self.joins += 1
        self.order.append(row)
        self._push(
            self._churn_rng.expovariate(1.0 / self._mean_lifetime),
            self._ev_kill,
            (row,),
        )
        inv = OBS.invariants
        if inv is not None:
            inv.note_membership(self._sim)

    def _rejoin_done(self, row: int, success: bool, entries) -> None:
        if not self.alive[row] or self.succs[row]:
            return
        if success and entries:
            own = self.node_id[row]
            self._merge_succ(row, [e for e in entries if e[0] != own])

    # -- routing core --------------------------------------------------------

    def _route_next(self, row: int, key: int, exclude) -> Tuple[bool, bool, Optional[tuple]]:
        succs = self.succs[row]
        if not succs:
            return (True, True, None)  # OWNER_SELF
        succ = succs[0]
        own = self.node_id[row]
        mask = self._mask
        succ_id = succ[0]
        verme = self._verme
        if own == succ_id or 0 < (key - own) & mask <= (succ_id - own) & mask:
            if verme:
                shift = self._shift
                if (succ_id >> shift) == (key >> shift):
                    return (True, False, None)  # OWNER_SUCC
                return (True, True, None)  # corner rule: OWNER_SELF
            return (True, False, None)
        preds = self.preds[row]
        if preds:
            pred = preds[0]
            pid = pred[0]
            if pid == own or 0 < (key - pid) & mask <= (own - pid) & mask:
                if verme:
                    shift = self._shift
                    if (own >> shift) == (key >> shift):
                        return (True, True, None)
                    if pred[1] not in exclude:
                        return (False, False, pred)  # hand back one step
                    # excluded: fall through to the candidate scan
                else:
                    return (True, True, None)
        fver = self.fver[row]
        sver = self.sver[row]
        if fver != self.cand_fver[row] or sver != self.cand_sver[row]:
            cands = []
            for e in self.fingers[row].values():
                dc = (e[0] - own) & mask
                if dc:
                    cands.append((-dc, e))
            for e in succs:
                dc = (e[0] - own) & mask
                if dc:
                    cands.append((-dc, e))
            cands.sort(key=_neg_distance)
            keys = [c[0] for c in cands]
            infos = [c[1] for c in cands]
            self.cand_keys[row] = keys
            self.cand_infos[row] = infos
            self.cand_fver[row] = fver
            self.cand_sver[row] = sver
        else:
            keys = self.cand_keys[row]
            infos = self.cand_infos[row]
        dk = (key - own) & mask if key != own else mask + 1
        i = bisect_right(keys, -dk)
        best = None
        if exclude:
            for j in range(i, len(infos)):
                e = infos[j]
                if e[1] not in exclude:
                    best = e
                    break
        elif i < len(infos):
            best = infos[i]
        if best is None:
            if succ[1] not in exclude:
                best = succ
            else:
                return (False, False, None)  # NO_ROUTE
        return (False, False, best)

    def _entries_for_key(self, row: int, key: int, purpose: int, owner_self: bool):
        if self._verme and purpose == _P_DHT:
            shift = self._shift
            section = key >> shift
            own = self.node_id[row]
            if owner_self:
                if (own >> shift) != section:
                    return [(own, row)]
                group = [(own, row)]
                for p in self.preds[row]:
                    if (p[0] >> shift) == section:
                        group.append(p)
            else:
                group = [s for s in self.succs[row] if (s[0] >> shift) == section]
                if not group:
                    group = self.succs[row][:1]
            return group[: self._num_succ]
        if owner_self:
            entries = [(self.node_id[row], row)]
            entries.extend(self.succs[row])
        else:
            entries = list(self.succs[row])
        return entries[: self._num_succ]

    def _verify_core(self, term_row: int, init_row: int, key: int, purpose: int, meta):
        if not self._verme:
            return None
        cert_id = self.node_id[init_row]
        if purpose == _P_JOIN:
            if cert_id != key:
                return "join lookup for a foreign id"
            return None
        if purpose == _P_FINGER:
            targets = self._ftargets.get(init_row)
            if targets is None:
                layout = self._layout
                targets = frozenset(
                    verme_finger_target(layout, cert_id, k) for k in range(self._bits)
                )
                self._ftargets[init_row] = targets
            if key not in targets:
                return "key is not a finger target of the certified id"
            return None
        verifier = self._dht_verifier(term_row)
        if verifier is not None:
            return verifier(init_row, key, meta)
        return None

    # Hook points the fig6/7 facade layer overrides.
    def _dht_hook(self, row: int):
        return None

    def _dht_verifier(self, row: int):
        return None

    def _hook_local(self, st, hook, entries) -> None:  # pragma: no cover
        raise NotImplementedError

    def _hook_terminal(self, row, params, upstream, hook, entries, category, op_tag):
        raise NotImplementedError  # pragma: no cover

    # -- forwarding ----------------------------------------------------------

    def _send_forward(self, st: _Lookup, token: tuple, dst_row: int, hops: int) -> None:
        row = st.row
        params = (
            st.key,
            token,
            st.style,
            st.purpose,
            hops,
            st.meta,
            st.extra,
            row if st.style == _TRANS else None,  # origin
            row,  # initiator (certificate bearer)
        )
        extra = st.extra
        size = self._fwd_base + extra
        if params[7] is not None:
            size += ADDR_BYTES
        if extra:
            timeout = self._rpc_to + extra / _WORST_CASE_BANDWIDTH
        else:
            timeout = self._rpc_to
        sim = self._sim
        seq = sim._next_seq  # rpc failure timer seq
        sim._next_seq = seq + 2  # + send seq
        category = st.category
        op_tag = st.op_tag
        self._acct_b[category] += size
        self._acct_m[category] += 1
        if op_tag is not None:
            self._acct_o[op_tag] += size
        deadline = sim._now + timeout
        t = sim._now + (
            self._latency(self.host[row], self.host[dst_row])
            if self._bw is None
            else self._delay(self.host[row], self.host[dst_row], size)
        )
        heapq.heappush(
            sim._queue,
            (
                t,
                seq + 1,
                self._ev_fwd,
                (dst_row, row, params, deadline, seq, 0, st, category, op_tag),
            ),
        )
        sim._live += 1

    def _ev_fwd(
        self,
        dst_row: int,
        src_row: int,
        params: tuple,
        deadline: float,
        timer_seq: int,
        errk: int,
        errctx,
        category: str,
        op_tag,
    ) -> None:
        sim = self._sim
        if not self.alive[dst_row]:
            self._net._drop(CAUSE_DEAD)
            heapq.heappush(
                sim._queue,
                (
                    deadline,
                    timer_seq,
                    self._ev_fwd_to,
                    (src_row, dst_row, errk, errctx, category, op_tag),
                ),
            )
            sim._live += 1
            return
        # Per-hop ack: info-free reply (rpc ack carries no information).
        seq = sim._next_seq
        sim._next_seq = seq + 1
        self._acct_b[category] += MIN_RPC_BYTES
        self._acct_m[category] += 1
        if op_tag is not None:
            self._acct_o[op_tag] += MIN_RPC_BYTES
        t = sim._now + (
            self._latency(self.host[dst_row], self.host[src_row])
            if self._bw is None
            else self._delay(self.host[dst_row], self.host[src_row], MIN_RPC_BYTES)
        )
        if t < deadline:
            h = sim._run_until
            if h is None:
                heapq.heappush(sim._queue, (t, seq, self._ev_noop, (src_row,)))
                sim._live += 1
            elif t <= h:
                self.elided += 1
            else:
                heapq.heappush(self._future_elided, t)
        else:
            heapq.heappush(sim._queue, (t, seq, self._ev_noop, (src_row,)))
            heapq.heappush(
                sim._queue,
                (
                    deadline,
                    timer_seq,
                    self._ev_fwd_to,
                    (src_row, dst_row, errk, errctx, category, op_tag),
                ),
            )
            sim._live += 2
        hops = params[4]
        if hops > self._max_hops:
            self._send_result_back(
                dst_row, params, src_row, False, None, "hop limit", None, 0, "lookup", None
            )
            return
        adm = self.adm[dst_row]
        if (
            adm is not None
            and params[3] == _P_DHT
            and (hops == 1 or not adm.policy.ingress_only)
        ):
            verdict = adm.admit(sim._now)
            if type(verdict) is str:  # shed cause
                self._send_result_back(
                    dst_row, params, src_row, False, None, verdict, None, 0,
                    "lookup", None,
                )
                return
            # Mirrors ChordNode._h_route_forward's sim.schedule of
            # _process_forward: one kernel event, one burned seq.
            self._push(
                verdict, self._ev_fwd_proc, (dst_row, src_row, params, category, op_tag)
            )
            return
        if params[2] == _REC:
            token = params[1]
            fwd = self.forwards[dst_row]
            if token in fwd:
                return  # duplicate
            gseq = sim._next_seq
            sim._next_seq = gseq + 1
            self._gc_queue.append((sim._now + self._gc_s, gseq, dst_row, token))
            if not self._gc_armed:
                self._gc_armed = True
                heapq.heappush(
                    sim._queue,
                    (sim._now + self._gc_s, gseq, self._ev_gc_sweep, ()),
                )
                sim._live += 1
            fwd[token] = (src_row, params)
        self._continue_forward(dst_row, params, src_row, _NO_EXCLUDE, category, op_tag)

    def _ev_fwd_proc(
        self, dst_row: int, src_row: int, params: tuple, category: str, op_tag
    ) -> None:
        """An admitted forward reached its virtual service time
        (mirrors ChordNode._process_forward, seq for seq)."""
        if not self.alive[dst_row]:
            return
        self.adm[dst_row].release()
        sim = self._sim
        if params[2] == _REC:
            token = params[1]
            fwd = self.forwards[dst_row]
            if token in fwd:
                return  # duplicate
            gseq = sim._next_seq
            sim._next_seq = gseq + 1
            self._gc_queue.append((sim._now + self._gc_s, gseq, dst_row, token))
            if not self._gc_armed:
                self._gc_armed = True
                heapq.heappush(
                    sim._queue,
                    (sim._now + self._gc_s, gseq, self._ev_gc_sweep, ()),
                )
                sim._live += 1
            fwd[token] = (src_row, params)
        self._continue_forward(dst_row, params, src_row, _NO_EXCLUDE, category, op_tag)

    def _continue_forward(
        self, row: int, params: tuple, upstream: int, exclude, category: str, op_tag
    ) -> None:
        done, owner_self, nxt = self._route_next(row, params[0], exclude)
        if done:
            self._terminate_route(row, params, upstream, owner_self, category, op_tag)
            return
        if nxt is None:
            self._send_result_back(
                row, params, upstream, False, None, "no route", None, 0, "lookup", None
            )
            return
        fwd_params = (
            params[0],
            params[1],
            params[2],
            params[3],
            params[4] + 1,
            params[5],
            params[6],
            params[7],
            params[8],
        )
        extra = params[6]
        size = self._fwd_base + extra
        if params[7] is not None:
            size += ADDR_BYTES
        if extra:
            timeout = self._rpc_to + extra / _WORST_CASE_BANDWIDTH
        else:
            timeout = self._rpc_to
        sim = self._sim
        seq = sim._next_seq
        sim._next_seq = seq + 2
        self._acct_b[category] += size
        self._acct_m[category] += 1
        if op_tag is not None:
            self._acct_o[op_tag] += size
        deadline = sim._now + timeout
        dst_row = nxt[1]
        t = sim._now + (
            self._latency(self.host[row], self.host[dst_row])
            if self._bw is None
            else self._delay(self.host[row], self.host[dst_row], size)
        )
        heapq.heappush(
            sim._queue,
            (
                t,
                seq + 1,
                self._ev_fwd,
                (
                    dst_row,
                    row,
                    fwd_params,
                    deadline,
                    seq,
                    1,
                    (params, upstream, exclude),
                    category,
                    op_tag,
                ),
            ),
        )
        sim._live += 1

    def _ev_fwd_to(
        self, src_row: int, dead_row: int, errk: int, errctx, category: str, op_tag
    ) -> None:
        # A route_forward rpc failure timer fired.
        if not self.alive[src_row]:
            self.phantom += 1  # rpc.shutdown cancelled it at crash
            return
        if errk == 0:
            st = errctx  # initiator's first hop: _first_hop_failed
            if st.token is None or st.token not in self.lookups[src_row]:
                return
            self._neighbor_dead(src_row, dead_row)
            if st.failed is None:
                st.failed = set()
            st.failed.add(dead_row)
            self._retry(st)
            return
        params, upstream, exclude = errctx  # mid-route: _forward_hop_failed
        self._neighbor_dead(src_row, dead_row)
        exclude = set(exclude)
        exclude.add(dead_row)
        if len(exclude) > 4:
            self._send_result_back(
                src_row, params, upstream, False, None, "no route", None, 0, "lookup", None
            )
            return
        self._continue_forward(src_row, params, upstream, exclude, category, op_tag)

    def _ev_gc_sweep(self) -> None:
        # Fires with the head entry's exact (expire, seq).  The head is
        # either a leaked forward (object's GC event fires: pop it) or
        # was cancelled after this sweep was armed (object's cancelled
        # handle: this kernel event stands in, so count a phantom).
        queue = self._gc_queue
        _expire, _seq, row, token = queue.popleft()
        if self.forwards[row].pop(token, None) is None:
            self.phantom += 1
        # Entries already cancelled *now* stay cancelled forever (tokens
        # are never reused), so drop them without scheduling anything —
        # the object kernel pops their cancelled handles silently.
        forwards = self.forwards
        while queue:
            entry = queue[0]
            if entry[3] in forwards[entry[2]]:
                break
            queue.popleft()
        if queue:
            entry = queue[0]
            sim = self._sim
            heapq.heappush(
                sim._queue, (entry[0], entry[1], self._ev_gc_sweep, ())
            )
            sim._live += 1
        else:
            self._gc_armed = False

    def _terminate_route(
        self, row: int, params: tuple, upstream: int, owner_self: bool, category: str, op_tag
    ) -> None:
        key = params[0]
        err = self._verify_core(row, params[8], key, params[3], params[5])
        if err is not None:
            self._send_result_back(
                row, params, upstream, False, None, err, None, 0, "lookup", None
            )
            return
        purpose = params[3]
        entries = self._entries_for_key(row, key, purpose, owner_self)
        meta = params[5]
        if purpose == _P_DHT and meta is not None:
            hook = self._dht_hook(row)
            if hook is not None:
                self._hook_terminal(row, params, upstream, hook, entries, category, op_tag)
                return
        self._send_result_back(
            row, params, upstream, True, entries, None, None, 0, category, op_tag
        )

    def _send_result_back(
        self,
        row: int,
        params: tuple,
        upstream: int,
        ok: bool,
        entries,
        error,
        app_payload,
        extra_bytes: int,
        category: str,
        op_tag,
    ) -> None:
        size = MIN_RPC_BYTES + extra_bytes
        payload = None
        if ok and entries is not None:
            payload = entries  # sealing is representation-free here
            size += len(entries) * self._entry_bytes + self._res_extra
        rparams = (params[1], ok, payload, app_payload, error, params[4], size)
        if params[2] == _TRANS:
            dst = params[7]
            if dst is None:
                return
        else:
            dst = upstream
        sim = self._sim
        seq = sim._next_seq
        sim._next_seq = seq + 1
        self._acct_b[category] += size
        self._acct_m[category] += 1
        if op_tag is not None:
            self._acct_o[op_tag] += size
        t = sim._now + (
            self._latency(self.host[row], self.host[dst])
            if self._bw is None
            else self._delay(self.host[row], self.host[dst], size)
        )
        heapq.heappush(sim._queue, (t, seq, self._ev_res, (dst, rparams, category, op_tag)))
        sim._live += 1

    def _ev_res(self, dst_row: int, rparams: tuple, category: str, op_tag) -> None:
        if not self.alive[dst_row]:
            self._net._drop(CAUSE_DEAD)
            return
        token = rparams[0]
        st = self.lookups[dst_row].get(token)
        if st is not None:
            self._initiator_result(st, rparams)
            return
        fwd = self.forwards[dst_row].pop(token, None)
        if fwd is None:
            return  # stale / GC'ed
        # relay upstream (the gc calendar entry is now stale)
        upstream = fwd[0]
        sim = self._sim
        seq = sim._next_seq
        sim._next_seq = seq + 1
        size = rparams[6]
        self._acct_b[category] += size
        self._acct_m[category] += 1
        if op_tag is not None:
            self._acct_o[op_tag] += size
        t = sim._now + (
            self._latency(self.host[dst_row], self.host[upstream])
            if self._bw is None
            else self._delay(self.host[dst_row], self.host[upstream], size)
        )
        heapq.heappush(
            sim._queue, (t, seq, self._ev_res, (upstream, rparams, category, op_tag))
        )
        sim._live += 1

    def _initiator_result(self, st: _Lookup, rparams: tuple) -> None:
        ok = rparams[1]
        if not ok:
            error = rparams[4]
            if error is not None and error.startswith("shed:"):
                # Definitive rejection: fail fast, no retries (mirrors
                # ChordNode._initiator_result's shed branch).
                self._finish(st, None, 0, error, None)
                return
            if st.attempts > self._retries:
                self._finish(st, None, 0, rparams[4] or "failed", None)
            else:
                self._retry(st)
            return
        entries = list(rparams[2])
        self._finish(st, entries, rparams[5], None, rparams[3])

    # -- snapshots -----------------------------------------------------------

    def ring_snapshot(self, now: float):
        """A :class:`~repro.invariants.snapshot.RingSnapshot` built from
        the state arrays (satellite: --invariants on both engines)."""
        from ..invariants.snapshot import RingSnapshot

        rows = [r for r in self.order]
        rows.sort()
        node_ids = []
        succ_ids = []
        pred_ids = []
        finger_rows = []
        for r in rows:
            own = self.node_id[r]
            node_ids.append(own)
            succ_ids.append([e[0] for e in self.succs[r]])
            pred_ids.append([e[0] for e in self.preds[r]])
            finger_rows.append(
                [
                    (k, self._finger_target(own, k), e[0])
                    for k, e in self.fingers[r].items()
                ]
            )
        return RingSnapshot.from_arrays(
            self._bits,
            now,
            node_ids,
            succ_ids,
            pred_ids,
            finger_rows,
            layout=self._layout,
        )
