"""Per-node admission control and throttling for the live protocol.

The simulator's latency model is pure network — without a server-side
capacity model a flash crowd degrades nothing, so overload experiments
would be vacuous.  This module adds the three pieces the serving layer
needs (Phagocytes-style rate guards at the overlay ingress, see
PAPERS.md):

* a **service queue**: each admitted DHT forward occupies a virtual
  single-server queue draining at ``service_rate_per_s``; processing is
  delayed by the queue backlog, which is where overload latency comes
  from;
* **queue-depth shedding**: forwards arriving at a queue already
  ``max_queue`` deep are rejected immediately (cause ``shed:queue``);
* a **token bucket**: sustained rate above ``bucket_rate_per_s``
  (burst ``bucket_burst``) is rejected immediately (cause
  ``shed:rate``).

A shed is a definitive rejection, not a timeout: the initiator fails
the lookup fast instead of burning retries, which is exactly the
backpressure that keeps goodput up during a spike.  Only DHT-purpose
lookups are subject to admission — maintenance, join and finger
traffic is control-plane and always passes (shedding repair traffic
under load is how overlays collapse).  With ``ingress_only`` (the
default) admission applies at the first forward hop only, so one
lookup is either rejected at the door or served end-to-end; per-hop
shedding would multiply a per-node drop rate across every hop of a
multi-hop route and destroy goodput for everyone.

All state advances on the sim clock, so runs stay deterministic and
the object-graph and columnar engines shed the same requests at the
same virtual times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import OBS

#: Shed-cause error strings (also the lookup failure ``error`` values).
SHED_RATE = "shed:rate"
SHED_QUEUE = "shed:queue"


class TokenBucket:
    """A token bucket on virtual time: ``rate_per_s`` refill, ``burst`` cap.

    The bucket starts full, so a burst of up to ``burst`` requests
    passes at t=0.  With ``burst`` 0 the bucket never holds a whole
    token and every request is rejected (a closed valve).  Refill is
    continuous: after exactly ``1/rate_per_s`` idle seconds one more
    token is available (the exact-refill boundary admits).
    """

    __slots__ = ("rate_per_s", "burst", "tokens", "last")

    def __init__(self, rate_per_s: float, burst: float, now: float = 0.0) -> None:
        if rate_per_s < 0 or burst < 0:
            raise ValueError("rate and burst must be non-negative")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = now

    def try_take(self, now: float) -> bool:
        """Take one token at time ``now``; False when none is available."""
        tokens = self.tokens + (now - self.last) * self.rate_per_s
        if tokens > self.burst:
            tokens = self.burst
        self.last = now
        if tokens >= 1.0:
            self.tokens = tokens - 1.0
            return True
        self.tokens = tokens
        return False


@dataclass(frozen=True)
class ServicePolicy:
    """Per-node serving knobs (one policy object shared by all nodes).

    ``service_rate_per_s`` is the node's DHT-forward capacity.
    ``max_queue`` None disables queue shedding (unbounded backlog — the
    no-shedding control); ``bucket_rate_per_s`` None disables the token
    bucket.  ``ingress_only`` gates admission *and* queueing to the
    first forward hop (see the module docstring).
    """

    service_rate_per_s: float
    max_queue: Optional[int] = None
    bucket_rate_per_s: Optional[float] = None
    bucket_burst: float = 1.0
    ingress_only: bool = True

    def __post_init__(self) -> None:
        if self.service_rate_per_s <= 0:
            raise ValueError("service rate must be positive")
        if self.max_queue is not None and self.max_queue < 0:
            raise ValueError("max_queue must be non-negative")


@dataclass
class AdmissionStats:
    """Cell-wide shed/accept counters (shared across transient nodes)."""

    accepted: int = 0
    shed_rate: int = 0
    shed_queue: int = 0

    @property
    def shed(self) -> int:
        """Total requests rejected, both causes."""
        return self.shed_rate + self.shed_queue


class NodeAdmission:
    """One node's admission state: token bucket + virtual service queue."""

    __slots__ = ("policy", "stats", "bucket", "queue_depth", "last_depart")

    def __init__(self, policy: ServicePolicy, stats: AdmissionStats) -> None:
        self.policy = policy
        self.stats = stats
        self.bucket = (
            TokenBucket(policy.bucket_rate_per_s, policy.bucket_burst)
            if policy.bucket_rate_per_s is not None
            else None
        )
        self.queue_depth = 0
        self.last_depart = 0.0

    def admit(self, now: float):
        """Admit one DHT forward at time ``now``.

        Returns the queueing delay (a float >= 0) until the virtual
        server processes the request, or a shed-cause string
        (``shed:rate`` / ``shed:queue``) when the request is rejected.
        The cause-tagged drop counters flow through ``repro.obs`` when
        metrics collection is on.
        """
        policy = self.policy
        if self.bucket is not None and not self.bucket.try_take(now):
            self.stats.shed_rate += 1
            metrics = OBS.metrics
            if metrics is not None:
                metrics.counter("admission.shed.rate").inc()
            return SHED_RATE
        if policy.max_queue is not None and self.queue_depth >= policy.max_queue:
            self.stats.shed_queue += 1
            metrics = OBS.metrics
            if metrics is not None:
                metrics.counter("admission.shed.queue").inc()
            return SHED_QUEUE
        start = self.last_depart if self.last_depart > now else now
        depart = start + 1.0 / policy.service_rate_per_s
        self.last_depart = depart
        self.queue_depth += 1
        self.stats.accepted += 1
        metrics = OBS.metrics
        if metrics is not None:
            metrics.counter("admission.accepted").inc()
        return depart - now

    def release(self) -> None:
        """One queued request reached its service time."""
        self.queue_depth -= 1
