"""Overlay protocol configuration.

Defaults follow the paper's §7.1 setup: 10 successors, successor
stabilization every 30 s, finger stabilization every 60 s, and (for
Verme) 10 predecessors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ids.idspace import DEFAULT_SPACE, IdSpace


@dataclass(frozen=True)
class OverlayConfig:
    """Knobs shared by Chord and Verme nodes."""

    space: IdSpace = DEFAULT_SPACE
    num_successors: int = 10
    num_predecessors: int = 10
    stabilize_interval_s: float = 30.0
    finger_interval_s: float = 60.0
    rpc_timeout_s: float = 0.5
    lookup_timeout_s: float = 8.0
    lookup_retries: int = 3
    max_lookup_hops: int = 100
    pending_route_gc_s: float = 30.0

    def __post_init__(self) -> None:
        if self.num_successors < 1:
            raise ValueError("need at least one successor")
        if self.rpc_timeout_s <= 0 or self.lookup_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
