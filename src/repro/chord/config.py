"""Overlay protocol configuration.

Defaults follow the paper's §7.1 setup: 10 successors, successor
stabilization every 30 s, finger stabilization every 60 s, and (for
Verme) 10 predecessors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ids.idspace import DEFAULT_SPACE, IdSpace


@dataclass(frozen=True)
class OverlayConfig:
    """Knobs shared by Chord and Verme nodes."""

    space: IdSpace = DEFAULT_SPACE
    num_successors: int = 10
    num_predecessors: int = 10
    stabilize_interval_s: float = 30.0
    finger_interval_s: float = 60.0
    rpc_timeout_s: float = 0.5
    lookup_timeout_s: float = 8.0
    lookup_retries: int = 3
    max_lookup_hops: int = 100
    pending_route_gc_s: float = 30.0
    # RPC retransmission (opt-in; 0 keeps the paper's single-shot
    # timeout).  Each retransmit multiplies the previous per-attempt
    # timeout by the backoff factor, +/- a deterministic jitter
    # fraction drawn from the node's jitter stream.
    rpc_max_retransmits: int = 0
    rpc_backoff_factor: float = 2.0
    rpc_backoff_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.num_successors < 1:
            raise ValueError("need at least one successor")
        if self.rpc_timeout_s <= 0 or self.lookup_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.rpc_max_retransmits < 0:
            raise ValueError("rpc_max_retransmits must be non-negative")
        if self.rpc_backoff_factor < 1.0:
            raise ValueError("rpc_backoff_factor must be >= 1")
        if not 0.0 <= self.rpc_backoff_jitter < 1.0:
            raise ValueError("rpc_backoff_jitter must be in [0, 1)")
