"""Chord: the baseline routing overlay (Stoica et al., SIGCOMM '01)."""

from .config import OverlayConfig
from .lookup import LookupPurpose, LookupResult, LookupStyle
from .node import ChordNode
from .ring import (
    ChurnDriver,
    ChurnEvent,
    ScriptedChurn,
    LookupWorkload,
    NodeFactory,
    Population,
    instant_bootstrap,
    make_static_overlay,
)
from .rpc import RpcContext, RpcLayer
from .state import FingerTable, NeighborList, NodeInfo

__all__ = [
    "ChordNode",
    "ChurnDriver",
    "ChurnEvent",
    "ScriptedChurn",
    "FingerTable",
    "LookupPurpose",
    "LookupResult",
    "LookupStyle",
    "LookupWorkload",
    "NeighborList",
    "NodeFactory",
    "NodeInfo",
    "OverlayConfig",
    "Population",
    "RpcContext",
    "RpcLayer",
    "instant_bootstrap",
    "make_static_overlay",
]
