"""Per-node routing state: successor/predecessor lists and fingers.

The containment argument of the paper is entirely about *what these
tables are allowed to contain*, so the state is kept in one auditable
place with explicit invariant helpers (used by tests and by the worm
model's knowledge extraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..ids.idspace import IdSpace
from ..net.addressing import NodeAddress


@dataclass(frozen=True)
class NodeInfo:
    """A routing-table entry: an id and how to reach it.

    In Verme the node's type is *derivable from the id* (the middle
    bits), so entries never need to carry a separate type field.
    """

    node_id: int
    address: NodeAddress

    def __str__(self) -> str:
        return f"{self.node_id:#x}@{self.address}"


class NeighborList:
    """An ordered list of ring neighbours (successors or predecessors).

    Entries are kept sorted by ring distance from the owner, deduplicated
    by id, truncated to ``limit``, and never include the owner itself.
    ``clockwise=True`` sorts by clockwise distance (successor list);
    ``False`` by counter-clockwise distance (predecessor list).
    """

    def __init__(
        self, space: IdSpace, owner_id: int, limit: int, clockwise: bool = True
    ) -> None:
        self._space = space
        self._owner_id = owner_id
        self._limit = limit
        self._clockwise = clockwise
        self._entries: List[NodeInfo] = []

    def _distance(self, info: NodeInfo) -> int:
        if self._clockwise:
            return self._space.distance(self._owner_id, info.node_id)
        return self._space.distance(info.node_id, self._owner_id)

    @property
    def entries(self) -> List[NodeInfo]:
        return list(self._entries)

    @property
    def first(self) -> Optional[NodeInfo]:
        return self._entries[0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __contains__(self, info: NodeInfo) -> bool:
        return info in self._entries

    def merge(self, candidates: Iterable[NodeInfo]) -> None:
        """Fold ``candidates`` into the list, keeping the closest ``limit``."""
        by_id: Dict[int, NodeInfo] = {e.node_id: e for e in self._entries}
        for info in candidates:
            if info.node_id == self._owner_id:
                continue
            # A fresher incarnation of the same id replaces the old entry.
            by_id[info.node_id] = info
        ordered = sorted(by_id.values(), key=self._distance)
        self._entries = ordered[: self._limit]

    def replace(self, entries: Iterable[NodeInfo]) -> None:
        self._entries = []
        self.merge(entries)

    def remove_address(self, address: NodeAddress) -> None:
        self._entries = [e for e in self._entries if e.address != address]

    def remove_id(self, node_id: int) -> None:
        self._entries = [e for e in self._entries if e.node_id != node_id]


class FingerTable:
    """Sparse finger table indexed by finger number ``k``.

    Only fingers whose targets lie beyond the first successor are
    actually maintained (the successor list covers the rest), so the
    table holds ~log2(N) live entries.
    """

    def __init__(self) -> None:
        self._fingers: Dict[int, NodeInfo] = {}

    def set(self, k: int, info: Optional[NodeInfo]) -> None:
        if info is None:
            self._fingers.pop(k, None)
        else:
            self._fingers[k] = info

    def get(self, k: int) -> Optional[NodeInfo]:
        return self._fingers.get(k)

    def entries(self) -> List[NodeInfo]:
        return list(self._fingers.values())

    def items(self):
        return list(self._fingers.items())

    def remove_address(self, address: NodeAddress) -> None:
        dead = [k for k, e in self._fingers.items() if e.address == address]
        for k in dead:
            del self._fingers[k]

    def __len__(self) -> int:
        return len(self._fingers)
