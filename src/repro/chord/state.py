"""Per-node routing state: successor/predecessor lists and fingers.

The containment argument of the paper is entirely about *what these
tables are allowed to contain*, so the state is kept in one auditable
place with explicit invariant helpers (used by tests and by the worm
model's knowledge extraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..ids.idspace import IdSpace
from ..net.addressing import NodeAddress


@dataclass(frozen=True, slots=True)
class NodeInfo:
    """A routing-table entry: an id and how to reach it.

    In Verme the node's type is *derivable from the id* (the middle
    bits), so entries never need to carry a separate type field.
    Slotted: entries are created per routing-table merge and per lookup
    result, and the dict-less layout keeps that allocation cheap.
    """

    node_id: int
    address: NodeAddress

    def __str__(self) -> str:
        return f"{self.node_id:#x}@{self.address}"


class NeighborList:
    """An ordered list of ring neighbours (successors or predecessors).

    Entries are kept sorted by ring distance from the owner, deduplicated
    by id, truncated to ``limit``, and never include the owner itself.
    ``clockwise=True`` sorts by clockwise distance (successor list);
    ``False`` by counter-clockwise distance (predecessor list).
    """

    def __init__(
        self, space: IdSpace, owner_id: int, limit: int, clockwise: bool = True
    ) -> None:
        self._space = space
        self._owner_id = owner_id
        self._limit = limit
        self._clockwise = clockwise
        self._entries: List[NodeInfo] = []
        #: Bumped whenever the entry list actually changes content; the
        #: routing fast path uses it to cache a derived candidate list.
        self.version = 0

    def _distance(self, info: NodeInfo) -> int:
        if self._clockwise:
            return self._space.distance(self._owner_id, info.node_id)
        return self._space.distance(info.node_id, self._owner_id)

    @property
    def entries(self) -> List[NodeInfo]:
        return list(self._entries)

    @property
    def entries_view(self) -> List[NodeInfo]:
        """The internal entry list *without* the defensive copy.

        Mutating operations rebind ``_entries`` rather than mutate it,
        so a view taken here stays stable for the duration of a routing
        scan; callers must treat it as read-only.  This is the
        allocation-free path the per-hop routing loops use.
        """
        return self._entries

    @property
    def first(self) -> Optional[NodeInfo]:
        return self._entries[0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __contains__(self, info: NodeInfo) -> bool:
        return info in self._entries

    def merge(self, candidates: Iterable[NodeInfo]) -> None:
        """Fold ``candidates`` into the list, keeping the closest ``limit``."""
        by_id: Dict[int, NodeInfo] = {e.node_id: e for e in self._entries}
        for info in candidates:
            if info.node_id == self._owner_id:
                continue
            # A fresher incarnation of the same id replaces the old entry.
            by_id[info.node_id] = info
        # Sort key inlined from _distance: merges run on every
        # stabilization round, and the mask arithmetic is identical to
        # IdSpace.distance.
        owner = self._owner_id
        mask = self._space.mask
        if self._clockwise:
            ordered = sorted(by_id.values(), key=lambda e: (e.node_id - owner) & mask)
        else:
            ordered = sorted(by_id.values(), key=lambda e: (owner - e.node_id) & mask)
        new_entries = ordered[: self._limit]
        # Steady-state stabilization merges usually reproduce the same
        # list; skipping the rebind keeps ``version`` stable so derived
        # caches survive.
        if new_entries != self._entries:
            self._entries = new_entries
            self.version += 1

    def replace(self, entries: Iterable[NodeInfo]) -> None:
        had_entries = bool(self._entries)
        self._entries = []
        self.merge(entries)
        if had_entries and not self._entries:
            # merge() compared against the fresh empty list and saw no
            # change; the replacement itself still emptied the list.
            self.version += 1

    def remove_address(self, address: NodeAddress) -> None:
        kept = [e for e in self._entries if e.address != address]
        if len(kept) != len(self._entries):
            self._entries = kept
            self.version += 1

    def remove_id(self, node_id: int) -> None:
        kept = [e for e in self._entries if e.node_id != node_id]
        if len(kept) != len(self._entries):
            self._entries = kept
            self.version += 1


class FingerTable:
    """Sparse finger table indexed by finger number ``k``.

    Only fingers whose targets lie beyond the first successor are
    actually maintained (the successor list covers the rest), so the
    table holds ~log2(N) live entries.
    """

    def __init__(self) -> None:
        self._fingers: Dict[int, NodeInfo] = {}
        #: Bumped on content change (see NeighborList.version).
        self.version = 0

    def set(self, k: int, info: Optional[NodeInfo]) -> None:
        if info is None:
            if self._fingers.pop(k, None) is not None:
                self.version += 1
        elif self._fingers.get(k) != info:
            self._fingers[k] = info
            self.version += 1

    def get(self, k: int) -> Optional[NodeInfo]:
        return self._fingers.get(k)

    def entries(self) -> List[NodeInfo]:
        return list(self._fingers.values())

    def values(self):
        """Live no-copy view of the finger entries, in finger order of
        insertion (read-only; the routing scan's allocation-free path)."""
        return self._fingers.values()

    def items(self):
        return list(self._fingers.items())

    def remove_address(self, address: NodeAddress) -> None:
        dead = [k for k, e in self._fingers.items() if e.address == address]
        for k in dead:
            del self._fingers[k]
        if dead:
            self.version += 1

    def __len__(self) -> int:
        return len(self._fingers)
