"""Key-popularity models for the workload generators.

Each model draws lookup keys from the overlay's id space with a fixed
RNG budget per draw (at most one ``rng.random()`` / ``getrandbits``
call), so the object-graph and columnar engines consume the shared
workload stream in exactly the same order — the property the
engine-equivalence tests pin down.

``ZipfKeys`` maps popularity *ranks* to id-space keys through a
deterministic integer mix (no RNG), so rank *r* is the same key in
every run and every engine at any id width.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence

_M64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer (public-domain constants)."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def rank_to_key(rank: int, bits: int) -> int:
    """The deterministic id-space key of popularity rank ``rank``."""
    out = 0
    produced = 0
    while produced < bits:
        out = (out << 64) | _splitmix64((rank << 8) | (produced // 64))
        produced += 64
    return out & ((1 << bits) - 1)


class UniformKeys:
    """Uniformly random keys — the paper's §7.1.1 workload."""

    def __init__(self, bits: int) -> None:
        self.bits = bits

    def draw(self, rng) -> int:
        """One uniform key (one ``getrandbits`` call)."""
        return rng.getrandbits(self.bits)


class ZipfKeys:
    """Zipf(s) popularity over a fixed key universe.

    Rank *r* (0-based) is drawn with probability proportional to
    ``1 / (r + 1) ** s`` via inverse-CDF sampling on one
    ``rng.random()`` call, then mapped to an id-space key with
    :func:`rank_to_key`.
    """

    def __init__(self, bits: int, s: float = 0.99, universe: int = 10_000) -> None:
        if universe < 1:
            raise ValueError("need at least one key in the universe")
        self.bits = bits
        self.s = s
        self.universe = universe
        weights = [1.0 / (r + 1) ** s for r in range(universe)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float drift at the tail
        self._cdf = cdf
        self._keys = [rank_to_key(r, bits) for r in range(universe)]

    def key_of(self, rank: int) -> int:
        """The id-space key of popularity rank ``rank`` (0 = hottest)."""
        return self._keys[rank]

    def weight_of(self, rank: int) -> float:
        """The draw probability of rank ``rank``."""
        prev = self._cdf[rank - 1] if rank else 0.0
        return self._cdf[rank] - prev

    def draw(self, rng) -> int:
        """One Zipf-distributed key (one ``rng.random()`` call)."""
        return self._keys[bisect_right(self._cdf, rng.random())]


class TraceKeys:
    """Replay a recorded key sequence, cycling at the end.

    Consumes no RNG; the cursor is per-instance, so build one generator
    per experiment cell (the drivers do).
    """

    def __init__(self, keys: Sequence[int]) -> None:
        if not keys:
            raise ValueError("trace must contain at least one key")
        self._keys = list(keys)
        self._next = 0

    def draw(self, rng) -> int:
        """The next trace key (RNG untouched)."""
        key = self._keys[self._next]
        self._next = (self._next + 1) % len(self._keys)
        return key
