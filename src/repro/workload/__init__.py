"""Workload generation for the heavy-traffic serving experiments.

The paper evaluates under one stationary Poisson process with uniform
keys (§7.1.1); production DHT traffic is neither stationary nor
uniform.  This package supplies the missing models — Zipf / uniform /
trace key popularity, constant / spike / ramp / diurnal arrival shapes,
open- and closed-loop clients — all deterministic per seed and driven
identically by the object-graph and columnar live engines.  See
``docs/serving.md`` for the full reference.
"""

from .arrivals import ConstantShape, DiurnalShape, RampShape, SpikeShape
from .clients import ClosedLoopWorkload
from .generator import (
    OVERLOADS,
    RAMP_FACTOR,
    SPIKE_FACTOR,
    WORKLOADS,
    LookupGenerator,
    build_generator,
    overload_shape,
)
from .keys import TraceKeys, UniformKeys, ZipfKeys, rank_to_key
from .serving import ServingStats

__all__ = [
    "ConstantShape",
    "DiurnalShape",
    "RampShape",
    "SpikeShape",
    "ClosedLoopWorkload",
    "OVERLOADS",
    "RAMP_FACTOR",
    "SPIKE_FACTOR",
    "WORKLOADS",
    "LookupGenerator",
    "build_generator",
    "overload_shape",
    "TraceKeys",
    "UniformKeys",
    "ZipfKeys",
    "rank_to_key",
    "ServingStats",
]
