"""The generator both live engines drive their lookup workload from.

A :class:`LookupGenerator` pairs a key-popularity model (keys.py) with
an arrival shape (arrivals.py).  The drivers call exactly two methods
per fire event — ``draw_key(rng)`` then ``next_delay(rng, now, n)`` —
in that order, against the shared per-cell workload RNG stream; keeping
that call order identical in ``repro.chord.ring.LookupWorkload`` and
``ColumnarEngine._ev_fire`` is what makes the two engines bit-identical
under any workload preset.

The modulated process samples the rate multiplier at *schedule* time
(the moment the previous event fires), not via exact non-homogeneous
Poisson thinning.  Inter-arrival gaps are orders of magnitude shorter
than the shape timescales, so the distinction is negligible — and the
approximation is the same deterministic function of the RNG stream in
both engines, which is what the equivalence tests need.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .arrivals import ConstantShape, DiurnalShape, RampShape, SpikeShape
from .keys import TraceKeys, UniformKeys, ZipfKeys

#: ``--workload`` preset names (key-popularity models).
WORKLOADS = ("poisson", "zipf")
#: ``--overload`` preset names (arrival shapes).
OVERLOADS = ("none", "spike", "ramp", "diurnal")

#: Rate multiplier of the ``spike`` preset's flash crowd.
SPIKE_FACTOR = 8.0
#: Peak multiplier of the ``ramp`` preset.
RAMP_FACTOR = 4.0


class LookupGenerator:
    """Key draws + modulated exponential inter-arrival times."""

    def __init__(self, keys, shape, mean_interval_s: float) -> None:
        self.keys = keys
        self.shape = shape
        self.mean_interval_s = mean_interval_s

    def draw_key(self, rng) -> int:
        """The next lookup key (consumes the workload RNG)."""
        return self.keys.draw(rng)

    def next_delay(self, rng, now: float, population: int) -> float:
        """Exponential delay at the aggregate rate in force at ``now``."""
        rate = (
            max(1, population)
            / self.mean_interval_s
            * self.shape.multiplier(now)
        )
        return rng.expovariate(rate)

    @property
    def overload_window(self) -> Optional[Tuple[float, float]]:
        """The shape's overload interval, if it defines one."""
        return self.shape.window()


def overload_shape(name: str, duration_s: float, warmup_s: float,
                   factor: Optional[float] = None):
    """The named arrival shape sized to one experiment cell.

    Shapes are placed relative to the measured interval
    ``[warmup_s, duration_s)``: the spike covers the middle quarter,
    the ramp the second half, the diurnal one full period.
    """
    active = duration_s - warmup_s
    if name == "none":
        return ConstantShape()
    if name == "spike":
        start = warmup_s + 0.4 * active
        return SpikeShape(start, 0.25 * active, factor or SPIKE_FACTOR)
    if name == "ramp":
        return RampShape(warmup_s + 0.5 * active, duration_s,
                         factor or RAMP_FACTOR)
    if name == "diurnal":
        return DiurnalShape(period=active, phase=warmup_s)
    raise ValueError(
        f"unknown overload preset {name!r} (available: {', '.join(OVERLOADS)})"
    )


def build_generator(
    workload: str,
    overload: str,
    space_bits: int,
    mean_interval_s: float,
    duration_s: float,
    warmup_s: float,
    zipf_s: float = 0.99,
    zipf_universe: int = 10_000,
    overload_factor: Optional[float] = None,
    trace: Optional[Sequence[int]] = None,
) -> LookupGenerator:
    """One per-cell generator from the ``--workload``/``--overload``
    preset names (pass ``trace`` for trace-driven keys — API only)."""
    if trace is not None:
        keys = TraceKeys(trace)
    elif workload == "poisson":
        keys = UniformKeys(space_bits)
    elif workload == "zipf":
        keys = ZipfKeys(space_bits, s=zipf_s, universe=zipf_universe)
    else:
        raise ValueError(
            f"unknown workload preset {workload!r} "
            f"(available: {', '.join(WORKLOADS)})"
        )
    shape = overload_shape(overload, duration_s, warmup_s, overload_factor)
    return LookupGenerator(keys, shape, mean_interval_s)
