"""Closed-loop clients: a fixed fleet, one outstanding lookup each.

The open-loop drivers (``LookupWorkload`` and the columnar engine's
mirror) keep issuing at the generator's rate no matter how slow the
overlay gets — the right model for measuring overload.  The closed-loop
fleet here is the complementary model: each of ``clients`` virtual
users issues one lookup, waits for the result, thinks for an
exponential ``think_time_s``, and repeats, so offered load self-limits
as latency grows.  Object-graph engine only (the columnar engine
mirrors the open-loop driver, which is what the experiments gate on).
"""

from __future__ import annotations

import random
from typing import Optional

from ..analysis.stats import LookupStats
from ..chord.lookup import LookupPurpose, LookupResult, LookupStyle
from .generator import LookupGenerator


class ClosedLoopWorkload:
    """``clients`` synchronous users over the alive population."""

    def __init__(
        self,
        sim,
        population,
        rng: random.Random,
        style: LookupStyle,
        generator: LookupGenerator,
        clients: int = 16,
        think_time_s: float = 1.0,
        stats: Optional[LookupStats] = None,
        warmup_s: float = 0.0,
    ) -> None:
        if clients < 1:
            raise ValueError("need at least one client")
        self.sim = sim
        self.population = population
        self.rng = rng
        self.style = style
        self.generator = generator
        self.clients = clients
        self.think_time_s = think_time_s
        self.stats = stats if stats is not None else LookupStats()
        self.warmup_s = warmup_s
        self.in_flight = 0
        self._stopped = False

    def start(self) -> None:
        """Schedule every client's first request after warmup + think."""
        for _ in range(self.clients):
            self.sim.schedule(
                self.warmup_s + self._think(), self._issue
            )

    def stop(self) -> None:
        """Stop issuing; in-flight lookups still complete and record."""
        self._stopped = True

    def _think(self) -> float:
        return self.rng.expovariate(1.0 / self.think_time_s)

    def _issue(self) -> None:
        if self._stopped:
            return
        node = self.population.pick(self.rng)
        if node is None or not node.alive:
            # The picked node died between pick and issue: think again.
            self.sim.schedule(self._think(), self._issue)
            return
        self.in_flight += 1
        key = self.generator.draw_key(self.rng)
        node.lookup(
            key,
            on_done=self._done,
            style=self.style,
            purpose=LookupPurpose.DHT,
            category="lookup",
        )

    def _done(self, result: LookupResult) -> None:
        self.in_flight -= 1
        self.stats.record(result.success, result.latency_s, result.hops)
        if not self._stopped:
            self.sim.schedule(self._think(), self._issue)
