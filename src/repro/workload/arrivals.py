"""Arrival-rate shapes: deterministic rate multipliers over sim time.

A shape is a pure function ``multiplier(t) -> float`` scaling the base
arrival rate at virtual time ``t``; it consumes no RNG, so both engines
see identical modulated processes.  ``window()`` reports the shape's
overload interval ``(start, end)`` when one exists — the experiment
drivers use it to split goodput into pre/overload/post windows.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple


class ConstantShape:
    """No modulation: the paper's stationary Poisson workload."""

    def multiplier(self, t: float) -> float:
        """Always 1.0."""
        return 1.0

    def window(self) -> Optional[Tuple[float, float]]:
        """No overload interval."""
        return None


class SpikeShape:
    """A flash crowd: rate jumps to ``factor`` × base over one interval."""

    def __init__(self, start: float, duration: float, factor: float) -> None:
        if duration <= 0 or factor <= 0:
            raise ValueError("spike needs positive duration and factor")
        self.start = start
        self.end = start + duration
        self.factor = factor

    def multiplier(self, t: float) -> float:
        """``factor`` inside the spike window, 1.0 outside."""
        return self.factor if self.start <= t < self.end else 1.0

    def window(self) -> Optional[Tuple[float, float]]:
        """The spike interval."""
        return (self.start, self.end)


class RampShape:
    """Linear rate growth from 1× at ``start`` to ``factor``× at ``end``."""

    def __init__(self, start: float, end: float, factor: float) -> None:
        if end <= start or factor <= 0:
            raise ValueError("ramp needs end > start and a positive factor")
        self.start = start
        self.end = end
        self.factor = factor

    def multiplier(self, t: float) -> float:
        """1.0 before the ramp, linear growth inside, ``factor`` after."""
        if t <= self.start:
            return 1.0
        if t >= self.end:
            return self.factor
        frac = (t - self.start) / (self.end - self.start)
        return 1.0 + frac * (self.factor - 1.0)

    def window(self) -> Optional[Tuple[float, float]]:
        """The second half of the ramp (rate above the midpoint)."""
        mid = self.start + 0.5 * (self.end - self.start)
        return (mid, self.end)


class DiurnalShape:
    """Sinusoidal day/night cycle around the base rate.

    ``multiplier(t) = 1 + amplitude * sin(2π (t - phase) / period)``,
    floored at 0.05 so the process never stops entirely.
    """

    def __init__(self, period: float, amplitude: float = 0.6,
                 phase: float = 0.0) -> None:
        if period <= 0:
            raise ValueError("diurnal period must be positive")
        self.period = period
        self.amplitude = amplitude
        self.phase = phase

    def multiplier(self, t: float) -> float:
        """The sinusoidal multiplier at ``t`` (never below 0.05)."""
        value = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.period
        )
        return value if value > 0.05 else 0.05

    def window(self) -> Optional[Tuple[float, float]]:
        """No single overload interval (the peak recurs every period)."""
        return None
