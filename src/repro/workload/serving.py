"""Serving-quality statistics: tail latency and goodput over time.

:class:`ServingStats` is a drop-in :class:`~repro.analysis.stats.LookupStats`
that additionally timestamps every successful completion on the sim
clock, so experiments can report p99/p999 latency and windowed goodput
(successes per second of virtual time) — the quantities that actually
move under overload, where means stay misleadingly flat until collapse.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List

from ..analysis.stats import LookupStats, percentile


class ServingStats(LookupStats):
    """Lookup outcomes plus completion timestamps for tail/goodput."""

    def __init__(self, clock) -> None:
        super().__init__()
        #: any object with a ``now`` attribute/property on the sim clock
        self._clock = clock
        #: success completion times, non-decreasing (the sim clock only
        #: moves forward and record() runs inside the event loop)
        self.done_at: List[float] = []

    def record(self, success: bool, latency_s: float, hop_count: int) -> None:
        """One lookup outcome, stamped with the current virtual time."""
        super().record(success, latency_s, hop_count)
        if success:
            self.done_at.append(self._clock.now)

    def _latency_percentile(self, pct: float) -> float:
        return percentile(sorted(self.latencies_s), pct)

    @property
    def p50_latency_s(self) -> float:
        """Median success latency."""
        return self._latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile success latency."""
        return self._latency_percentile(99.0)

    @property
    def p999_latency_s(self) -> float:
        """99.9th-percentile success latency."""
        return self._latency_percentile(99.9)

    def goodput_per_s(self, t0: float, t1: float) -> float:
        """Successful completions per second inside ``[t0, t1)``."""
        if t1 <= t0:
            return 0.0
        done = self.done_at
        count = bisect_left(done, t1) - bisect_left(done, t0)
        return count / (t1 - t0)
