"""Periodic timers on top of the event kernel.

Protocol nodes run several maintenance loops (successor stabilization
every 30 s, finger stabilization every 60 s, workload generators with
exponential inter-arrival times).  ``PeriodicTimer`` encapsulates the
reschedule-after-fire pattern, including optional start jitter so that a
thousand nodes booted at t=0 do not all stabilize in the same instant —
the same desynchronisation p2psim applies.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .engine import EventHandle, Simulator


class PeriodicTimer:
    """Calls ``callback()`` every ``period`` seconds until stopped.

    If ``jitter_rng`` is given, the first firing is delayed by a uniform
    random fraction of the period.  If ``interval_fn`` is given it is
    called before each (re)scheduling and must return the next delay —
    used for exponential workload inter-arrivals.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        jitter_rng: Optional[random.Random] = None,
        interval_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if period <= 0 and interval_fn is None:
            raise ValueError("period must be positive")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._interval_fn = interval_fn
        self._handle: Optional[EventHandle] = None
        self._stopped = True
        self._jitter_rng = jitter_rng

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        """Arm the timer; the first firing happens after one interval."""
        if not self._stopped:
            return
        self._stopped = False
        delay = self._next_interval()
        if self._jitter_rng is not None:
            delay *= self._jitter_rng.random()
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer; the pending firing (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_interval(self) -> float:
        if self._interval_fn is not None:
            return max(0.0, self._interval_fn())
        return self._period

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if self._stopped:  # the callback may have stopped us
            return
        self._handle = self._sim.schedule(self._next_interval(), self._fire)
