"""Discrete-event simulation kernel (the p2psim substitute)."""

from .engine import EventHandle, SimulationError, Simulator
from .rng import RngRegistry, derive_seed
from .timers import PeriodicTimer

__all__ = [
    "EventHandle",
    "PeriodicTimer",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "derive_seed",
]
