"""Deterministic random-number streams.

Experiments must be reproducible bit-for-bit from a single seed, yet
different components (churn, lookup workload, id assignment, the worm)
must not perturb each other's streams when one of them draws more or
fewer numbers.  ``RngRegistry`` derives an independent ``random.Random``
per component name from a root seed, so adding a component never changes
the numbers any other component sees.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for stream ``name`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A family of named, independently-seeded random streams.

    >>> a = RngRegistry(42)
    >>> b = RngRegistry(42)
    >>> a.stream("churn").random() == b.stream("churn").random()
    True
    >>> a.stream("churn").random() != a.stream("workload").random()
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{name}"))
