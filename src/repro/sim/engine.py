"""Discrete-event simulation kernel.

This is the substrate everything else in the reproduction runs on: a
virtual clock plus a binary-heap event queue with cancellable handles.
It plays the role p2psim's event loop played for the original paper.

Times are floats in *seconds* of simulated time.  Determinism is a hard
requirement for reproducible experiments, so ties in the event queue are
broken by insertion order and all randomness must come from
:mod:`repro.sim.rng` streams seeded from the experiment seed.

Performance notes (the kernel is the hot path of every experiment):

* Heap entries are raw tuples — ``(time, seq, handle)`` for cancellable
  events, ``(time, seq, callback, args)`` for the fire-and-forget
  :meth:`Simulator.call_after` fast path.  ``seq`` is unique, so tuple
  comparison never reaches the third element and the two shapes can
  share one heap.
* Cancellation is lazy (cancelled entries stay queued until popped),
  but the queue is *compacted* — rebuilt without cancelled entries —
  once more than half of a non-trivial queue is dead.  Long
  timeout-heavy runs therefore cannot leak queue memory.
* ``run()`` batch-pops timestamp ties: after the ``until`` horizon
  check admits a timestamp, every tied entry is drained without
  re-checking the horizon.
* Batch-tick engines (:mod:`repro.worm.columnar`) schedule *one* kernel
  event per work window and drain many logical events inside it.  Two
  hooks support this: :meth:`Simulator.peek_next_time` lets a tick see
  how far it may drain before the next foreign event is due, and
  :attr:`Simulator.horizon` exposes the active ``run(until=...)`` bound
  so a tick never processes logical time the caller did not ask for.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Optional

from ..obs import OBS


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


#: Queues smaller than this are never compacted; rebuilding them costs
#: more than the dead entries do.
_MIN_COMPACT_SIZE = 64


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Handles are returned by :meth:`Simulator.schedule`.  Cancelling an
    already-fired or already-cancelled handle is a no-op, which makes
    timeout bookkeeping in protocol code straightforward.
    """

    __slots__ = ("callback", "args", "time", "_cancelled", "_fired", "_sim")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        if self._cancelled:
            return
        was_pending = not self._fired
        self._cancelled = True
        if was_pending:
            # Inlined Simulator._note_cancel: timeout cancellation is the
            # single most frequent bookkeeping call of RPC-heavy runs
            # (every answered call cancels its timer).
            sim = self._sim
            if sim is None:
                return
            if sim._live > 0:
                sim._live -= 1
            sim._cancelled_in_queue += 1
            queue = sim._queue
            if len(queue) > _MIN_COMPACT_SIZE and 2 * sim._cancelled_in_queue > len(
                queue
            ):
                sim._compact()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        return not (self._cancelled or self._fired)


class Simulator:
    """Virtual-time event scheduler.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    __slots__ = (
        "_now",
        "_queue",
        "_next_seq",
        "_running",
        "_events_processed",
        "_live",
        "_cancelled_in_queue",
        "_run_until",
    )

    def __init__(self) -> None:
        self._now = 0.0
        # Entries are (time, seq, EventHandle) or (time, seq, cb, args);
        # seq is unique so comparisons stop at the second element.
        self._queue: list[tuple] = []
        self._next_seq = 0
        self._running = False
        self._events_processed = 0
        self._live = 0
        self._cancelled_in_queue = 0
        self._run_until: Optional[float] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for progress/profiling)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of entries still in the queue, *including* cancelled
        ones awaiting lazy removal.  This is a queue-occupancy metric
        (what compaction looks at); use :attr:`pending_live` for the
        number of events that will actually fire."""
        return len(self._queue)

    @property
    def pending_live(self) -> int:
        """Number of scheduled events still due to fire (cancelled
        entries excluded).  Maintained on schedule/cancel/pop, so it is
        O(1) and unaffected by lazy cancellation."""
        return self._live

    @property
    def horizon(self) -> Optional[float]:
        """The ``until`` bound of the currently executing :meth:`run`
        (``None`` outside a run, or when running unbounded).  Callbacks
        that batch-process logical events read this so they never run
        logical time past what the caller asked for."""
        return self._run_until

    def peek_next_time(self) -> Optional[float]:
        """Earliest pending event time, or ``None`` for an empty queue.

        Lazily-cancelled entries at the head are discarded on the way
        (they would never fire anyway).  Inside an event callback the
        firing entry is already popped, so this is the time of the next
        *other* event — which is exactly what a batch tick needs to know
        to bound its drain window.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            if len(entry) == 3 and entry[2]._cancelled:
                heapq.heappop(queue)
                if self._cancelled_in_queue > 0:
                    self._cancelled_in_queue -= 1
                continue
            return entry[0]
        return None

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time.

        ``delay`` must be non-negative; a zero delay runs the callback at the
        current time but strictly after all callbacks already scheduled for
        the current time (FIFO among ties).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at (minus the past-time check its absolute
        # time argument needs) and EventHandle construction: this is the
        # kernel's hottest entry point, called once per timer.
        time = self._now + delay
        handle = EventHandle.__new__(EventHandle)
        handle.time = time
        handle.callback = callback
        handle.args = args
        handle._cancelled = False
        handle._fired = False
        handle._sim = self
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time, callback, args, self)
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def call_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget fast path: like :meth:`schedule` but returns
        no handle and cannot be cancelled.

        The only allocation is the heap entry itself (for the common
        zero-arg callback, ``args`` is the interned empty tuple), which
        makes this noticeably cheaper than :meth:`schedule` in
        event-per-call hot loops — worm scans, message delivery —
        where nothing ever cancels the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, callback, args))
        self._live += 1

    # -- lazy-cancellation compaction ----------------------------------------

    def _note_cancel(self) -> None:
        """A pending handle was cancelled: update counters and compact
        the queue when more than half of it is dead."""
        if self._live > 0:
            self._live -= 1
        self._cancelled_in_queue += 1
        queue = self._queue
        if len(queue) > _MIN_COMPACT_SIZE and 2 * self._cancelled_in_queue > len(
            queue
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (in place, so a
        ``run()`` loop holding a reference keeps seeing the live heap)."""
        queue = self._queue
        queue[:] = [
            entry for entry in queue if len(entry) == 4 or not entry[2]._cancelled
        ]
        heapq.heapify(queue)
        self._cancelled_in_queue = 0

    # -- running -------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Stops when the queue is exhausted, when the next event is past
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` callbacks (a safety valve for runaway protocols).
        Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._run_until = until
        run_start = self._now
        # ``events_processed`` is a post-run metric (no callback reads it
        # mid-run), so it accumulates in a local and flushes on exit.
        # ``_live`` decrements for *fired* events ride the same counter
        # (cancel() still updates ``_live`` directly, so its zero-floor
        # guard stays conservative while the counter is unflushed).
        processed = 0
        # An int sentinel keeps the per-event limit check an int/int
        # comparison.
        limit = max_events if max_events is not None else sys.maxsize
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                entry = queue[0]
                entry_time = entry[0]
                if until is not None and entry_time > until:
                    break
                heappop(queue)
                # Batch-drain every entry tied at entry_time: the
                # horizon check above already admitted the timestamp.
                # The clock only advances when an event actually fires
                # (popping a lazily-cancelled entry leaves it alone).
                while True:
                    if len(entry) == 3:
                        handle = entry[2]
                        if handle._cancelled:
                            if self._cancelled_in_queue > 0:
                                self._cancelled_in_queue -= 1
                        else:
                            self._now = entry_time
                            handle._fired = True
                            handle.callback(*handle.args)
                            processed += 1
                    else:
                        self._now = entry_time
                        entry[2](*entry[3])
                        processed += 1
                    if processed >= limit:
                        return
                    if queue and queue[0][0] == entry_time:
                        entry = heappop(queue)
                    else:
                        break
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._events_processed += processed
            self._live -= processed
            if self._live < 0:
                self._live = 0
            self._running = False
            self._run_until = None
            trace = OBS.trace
            if trace is not None:
                trace.complete(
                    "sim.run", run_start, self._now - run_start, lane="sim",
                    args={"events": processed},
                )
            metrics = OBS.metrics
            if metrics is not None:
                metrics.counter("sim.runs").inc()
                metrics.counter("sim.events_processed").inc(processed)

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if len(entry) == 3:
                handle = entry[2]
                if handle._cancelled:
                    if self._cancelled_in_queue > 0:
                        self._cancelled_in_queue -= 1
                    continue
                self._now = entry[0]
                handle._fired = True
                self._live -= 1
                handle.callback(*handle.args)
            else:
                self._now = entry[0]
                self._live -= 1
                entry[2](*entry[3])
            self._events_processed += 1
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._queue.clear()
        self._live = 0
        self._cancelled_in_queue = 0
