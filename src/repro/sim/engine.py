"""Discrete-event simulation kernel.

This is the substrate everything else in the reproduction runs on: a
virtual clock plus a binary-heap event queue with cancellable handles.
It plays the role p2psim's event loop played for the original paper.

Times are floats in *seconds* of simulated time.  Determinism is a hard
requirement for reproducible experiments, so ties in the event queue are
broken by insertion order and all randomness must come from
:mod:`repro.sim.rng` streams seeded from the experiment seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Handles are returned by :meth:`Simulator.schedule`.  Cancelling an
    already-fired or already-cancelled handle is a no-op, which makes
    timeout bookkeeping in protocol code straightforward.
    """

    __slots__ = ("callback", "args", "time", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callable[..., None], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        return not (self._cancelled or self._fired)


class Simulator:
    """Virtual-time event scheduler.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for progress/profiling)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of entries still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time.

        ``delay`` must be non-negative; a zero delay runs the callback at the
        current time but strictly after all callbacks already scheduled for
        the current time (FIFO among ties).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._seq), handle))
        return handle

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Stops when the queue is exhausted, when the next event is past
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` callbacks (a safety valve for runaway protocols).
        Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                entry = self._queue[0]
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._queue)
                handle = entry.handle
                if handle.cancelled:
                    continue
                self._now = entry.time
                handle._fired = True
                handle.callback(*handle.args)
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    return
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                continue
            self._now = entry.time
            handle._fired = True
            handle.callback(*handle.args)
            self._events_processed += 1
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._queue.clear()
