"""Node certificates and the certification authority.

Verme assumes (§4.1) "each node is assigned a certificate that binds
its node identifier to the public key that speaks for its principal,
and the platform type".  The evaluation never measures cryptographic
CPU cost, so keys and signatures are *structural* simulations: what is
enforced is exactly who can verify what and who can read what, plus the
wire sizes of certificates and sealed payloads.

Impersonation attacks (§5.3.1, §7.3) are modelled by issuing a
certificate whose claimed type differs from the node's true type — the
CA cannot tell (that is the attack premise), but the certificate is
flagged so experiments can report on it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Set

from ..ids.assignment import NodeType

_key_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A simulated asymmetric key pair (opaque integers)."""

    public: int
    private: int

    @staticmethod
    def generate() -> "KeyPair":
        n = next(_key_counter)
        return KeyPair(public=n, private=-n)

    def matches(self, public: int) -> bool:
        return self.public == public


@dataclass(frozen=True, slots=True)
class NodeCertificate:
    """Binds a node id to a public key and a *claimed* platform type.

    ``claimed_type`` is what the certificate asserts; ``true_type`` is
    the node's actual platform, carried only for experiment bookkeeping
    (it is never consulted by protocol code).
    """

    node_id: int
    claimed_type: NodeType
    public_key: int
    issuer_id: int
    true_type: NodeType = field(hash=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.true_type is None:
            object.__setattr__(self, "true_type", self.claimed_type)

    @property
    def is_impersonation(self) -> bool:
        return self.claimed_type != self.true_type


class CertificateError(ValueError):
    """A certificate failed verification."""


class CertificateAuthority:
    """Issues and verifies node certificates.

    The CA remembers the fingerprints of everything it issued; a
    certificate verifies iff this CA issued it (the simulation stand-in
    for checking the CA signature).
    """

    def __init__(self, issuer_id: int = 1) -> None:
        self.issuer_id = issuer_id
        self._issued: Set[NodeCertificate] = set()

    def issue(self, node_id: int, node_type: NodeType) -> tuple[NodeCertificate, KeyPair]:
        """Issue an honest certificate and its key pair."""
        keys = KeyPair.generate()
        cert = NodeCertificate(node_id, node_type, keys.public, self.issuer_id)
        self._issued.add(cert)
        return cert, keys

    def issue_impersonated(
        self, node_id: int, claimed_type: NodeType, true_type: NodeType
    ) -> tuple[NodeCertificate, KeyPair]:
        """Issue a certificate whose type claim is false (attack model)."""
        keys = KeyPair.generate()
        cert = NodeCertificate(
            node_id, claimed_type, keys.public, self.issuer_id, true_type=true_type
        )
        self._issued.add(cert)
        return cert, keys

    def verify(self, cert: NodeCertificate) -> bool:
        """Would a relying party accept this certificate?"""
        return cert in self._issued and cert.issuer_id == self.issuer_id

    def require_valid(self, cert: NodeCertificate) -> None:
        if not self.verify(cert):
            raise CertificateError(f"certificate for {cert.node_id:#x} not issued here")
