"""Simulated certificates, keys, sealed payloads, and admission."""

from .admission import AdmissionController, AdmissionPolicy

from .certificates import (
    CertificateAuthority,
    CertificateError,
    KeyPair,
    NodeCertificate,
)
from .sealed import SealedPayload, SealError, seal

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "CertificateAuthority",
    "CertificateError",
    "KeyPair",
    "NodeCertificate",
    "SealError",
    "SealedPayload",
    "seal",
]
