"""Certificate admission control: limiting Sybil attacks (paper §6.1).

Verme's containment assumes each entity holds one (or few) overlay
identities; an attacker who can mint arbitrarily many certificates of
arbitrary types could harvest addresses wholesale.  The paper points at
the deployed remedies — make identity acquisition *expensive* (solve a
cryptographic puzzle or download a large file, as in Credence) and cap
identities per principal; optionally verify the platform by remote
attestation.

``AdmissionController`` implements that policy in simulation time: a
certificate request costs ``puzzle_cost_s`` of virtual time before it
is granted, at most ``max_certificates_per_principal`` are ever issued
to one principal, and an (optional) attestation hook can pin the
claimed type to the requester's true platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..ids.assignment import NodeType
from ..sim import Simulator
from .certificates import CertificateAuthority, KeyPair, NodeCertificate

IssueCallback = Callable[[Optional[NodeCertificate], Optional[KeyPair]], None]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Cost and quota of identity acquisition."""

    puzzle_cost_s: float = 300.0          # Credence-style work per identity
    max_certificates_per_principal: int = 1
    require_attestation: bool = False     # pin claimed type to true platform

    def __post_init__(self) -> None:
        if self.puzzle_cost_s < 0:
            raise ValueError("puzzle cost cannot be negative")
        if self.max_certificates_per_principal < 1:
            raise ValueError("quota must allow at least one certificate")


@dataclass
class _Principal:
    issued: int = 0
    pending: int = 0


class AdmissionController:
    """Gates certificate issuance behind puzzles, quotas, attestation."""

    def __init__(
        self,
        sim: Simulator,
        ca: CertificateAuthority,
        policy: AdmissionPolicy,
    ) -> None:
        self.sim = sim
        self.ca = ca
        self.policy = policy
        self._principals: Dict[str, _Principal] = {}
        self.granted = 0
        self.denied_quota = 0
        self.denied_attestation = 0

    def request_certificate(
        self,
        principal: str,
        node_id: int,
        claimed_type: NodeType,
        on_issued: IssueCallback,
        true_type: Optional[NodeType] = None,
    ) -> bool:
        """Ask for a certificate; ``on_issued`` fires after the puzzle.

        Returns False (and calls ``on_issued(None, None)``) when the
        request is refused up-front by quota or attestation.
        ``true_type`` models what remote attestation would observe; it
        defaults to the claimed type (an honest requester).
        """
        state = self._principals.setdefault(principal, _Principal())
        if (
            state.issued + state.pending
            >= self.policy.max_certificates_per_principal
        ):
            self.denied_quota += 1
            on_issued(None, None)
            return False
        actual = true_type if true_type is not None else claimed_type
        if self.policy.require_attestation and actual is not claimed_type:
            self.denied_attestation += 1
            on_issued(None, None)
            return False
        state.pending += 1
        self.sim.schedule(
            self.policy.puzzle_cost_s,
            self._issue,
            principal,
            node_id,
            claimed_type,
            actual,
            on_issued,
        )
        return True

    def _issue(
        self,
        principal: str,
        node_id: int,
        claimed_type: NodeType,
        true_type: NodeType,
        on_issued: IssueCallback,
    ) -> None:
        state = self._principals[principal]
        state.pending -= 1
        state.issued += 1
        self.granted += 1
        if claimed_type is true_type:
            cert, keys = self.ca.issue(node_id, claimed_type)
        else:
            cert, keys = self.ca.issue_impersonated(node_id, claimed_type, true_type)
        on_issued(cert, keys)

    def certificates_issued_to(self, principal: str) -> int:
        state = self._principals.get(principal)
        return state.issued if state else 0

    def max_identity_rate_per_s(self) -> float:
        """Upper bound on identities/second one principal can mint —
        the number that bounds a Sybil harvest rate."""
        if self.policy.puzzle_cost_s == 0:
            return float("inf")
        return 1.0 / self.policy.puzzle_cost_s
