"""Sealed (encrypted-for-recipient) payloads.

Verme lookup replies travel back through the reverse lookup path and
must not disclose the returned network address to intermediate nodes
(§4.5).  ``SealedPayload`` enforces that structurally: only the holder
of the matching private key can open it; everyone else sees an opaque
box of a known wire size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .certificates import KeyPair


class SealError(PermissionError):
    """Attempt to open a sealed payload with the wrong key."""


@dataclass(frozen=True, slots=True)
class SealedPayload:
    """A payload readable only by the owner of ``recipient_public_key``."""

    recipient_public_key: int
    _payload: Any

    def open(self, keys: KeyPair) -> Any:
        """Decrypt with the recipient's key pair."""
        if not keys.matches(self.recipient_public_key):
            raise SealError("sealed payload opened with a non-matching key")
        return self._payload

    def __repr__(self) -> str:  # never leak the payload in logs
        return f"SealedPayload(for={self.recipient_public_key})"


def seal(recipient_public_key: int, payload: Any) -> SealedPayload:
    """Encrypt ``payload`` for the holder of ``recipient_public_key``."""
    return SealedPayload(recipient_public_key, payload)
