"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but measurements of the claims its design
sections make in prose: the finger displacement (§4.4) is what contains
the worm; two-section replication (§5.2) is what survives an outbreak;
the predecessor corner rule's load cost is negligible; containment
generalises beyond two types (§4.1's deferred generalisation).
"""

import pytest

from repro.analysis.tables import format_table
from repro.experiments.ablations import (
    run_load_comparison,
    run_multitype_containment,
    run_naive_finger_ablation,
    run_replication_availability,
)
from repro.worm import WormScenarioConfig

CFG = WormScenarioConfig(num_nodes=3000, num_sections=128, seed=9)


def test_ablation_finger_displacement(benchmark):
    res = benchmark.pedantic(
        run_naive_finger_ablation, args=(CFG,), kwargs={"until": 200.0},
        rounds=1, iterations=1,
    )
    print("\n=== Ablation: finger displacement (§4.4) ===")
    print(format_table(
        ["fingers", "infected", "vulnerable"],
        [["displaced (paper)", res.infected_with_displacement, res.vulnerable],
         ["naive chord", res.infected_naive_fingers, res.vulnerable]],
    ))
    # With displacement: one island.  Without: the worm escapes.
    assert res.infected_with_displacement < 0.05 * res.vulnerable
    assert res.infected_naive_fingers > 0.9 * res.vulnerable


def test_ablation_two_section_replication(benchmark):
    res = benchmark.pedantic(
        run_replication_availability, args=(CFG,), rounds=1, iterations=1
    )
    print("\n=== Ablation: replica placement vs. type-wide outbreak (§5.2) ===")
    print(format_table(
        ["placement", "keys still readable"],
        [["two sections (VerDi)", f"{res.survivors_two_sections:.1%}"],
         ["single section", f"{res.survivors_single_section:.1%}"]],
    ))
    assert res.survivors_two_sections > 0.99
    assert res.survivors_single_section < 0.6


def test_ablation_corner_rule_load(benchmark):
    res = benchmark.pedantic(
        run_load_comparison,
        kwargs={"num_nodes": 2000, "num_sections": 128, "samples": 40_000},
        rounds=1, iterations=1,
    )
    print("\n=== Ablation: ownership load, Chord vs. Verme corner rule (§4.4) ===")
    print(format_table(
        ["system", "gini", "max/mean", "top-10% share", "corner-rule keys"],
        [["chord", round(res.chord.gini, 3), round(res.chord.max_over_mean, 1),
          f"{res.chord.top_decile_share:.1%}", "-"],
         ["verme", round(res.verme.gini, 3), round(res.verme.max_over_mean, 1),
          f"{res.verme.top_decile_share:.1%}",
          f"{res.verme.predecessor_rule_fraction:.1%}"]],
    ))
    # The corner rule must not change the global balance materially.
    assert abs(res.verme.gini - res.chord.gini) < 0.1


def test_ablation_fragments_vs_replicas(benchmark):
    """§5.1's skipped optimization: a (3, 6) erasure code stores six
    ~len/3 fragments instead of six full copies, cutting the network
    cost of durably placing a block to ~n/k of full replication (gets
    still transfer ~len in total — the read-side win is parallelism and
    loss tolerance, which the fragment unit tests cover)."""
    import random

    from repro.dht import DHashNode, DhtConfig
    from repro.dht.fragments import FragmentConfig, FragmentedDHashNode
    from repro.experiments.builders import build_ring
    from repro.chord.config import OverlayConfig
    from repro.ids import IdSpace
    from repro.net import ConstantLatency, Network
    from repro.sim import RngRegistry, Simulator

    def run():
        out = {}
        for label, cls, kwargs in (
            ("replicated", DHashNode, {}),
            ("fragmented", FragmentedDHashNode,
             {"fragment_config": FragmentConfig(total=6, required=3)}),
        ):
            sim = Simulator()
            net = Network(sim, ConstantLatency(num_hosts=64, one_way=0.02))
            ring = build_ring(
                sim, net, OverlayConfig(space=IdSpace(64), num_successors=8),
                64, RngRegistry(3),
            )
            layers = [cls(n, DhtConfig(num_replicas=6), **kwargs) for n in ring.nodes]
            rng = random.Random(5)
            value = rng.randbytes(8192)
            done = []
            layers[0].put(value, done.append)
            sim.run(until=sim.now + 120)  # include background replication
            assert done[0].ok
            # The placement cost: client stores plus replica pushes
            # (overlay maintenance is excluded — it is identical).
            out[label] = net.accounting.category_bytes(
                "data"
            ) + net.accounting.category_bytes("replication")
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: fragments vs replicas — network bytes to place "
          "one 8 KiB block at durability 6 ===")
    print(format_table(
        ["placement", "placement bytes"],
        [[k, v] for k, v in res.items()],
    ))
    # Six ~2.7 KiB fragments vs six 8 KiB copies: ~3x cheaper.
    assert res["fragmented"] < 0.5 * res["replicated"]


def test_ablation_unstructured_tracker(benchmark):
    """§6.2: the same principles on a tracker-based unstructured overlay."""
    from repro.unstructured import TrackerConfig, build_swarm, run_swarm_worm

    def run():
        cfg = TrackerConfig(island_size=24, same_island_neighbors=6,
                            cross_type_neighbors=6)
        out = {}
        for label, containment in (("containment", True), ("conventional", False)):
            swarm = build_swarm(2000, cfg, seed=11, containment=containment)
            out[label] = run_swarm_worm(swarm, until=300.0, seed=11)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: tracker-assigned unstructured overlay (§6.2) ===")
    print(format_table(
        ["tracker", "infected", "vulnerable"],
        [[label, r.infected, r.vulnerable_count] for label, r in res.items()],
    ))
    assert res["containment"].containment_fraction < 0.1
    assert res["conventional"].containment_fraction > 0.8


@pytest.mark.parametrize("type_bits", [1, 2, 3])
def test_ablation_multitype(benchmark, type_bits):
    res = benchmark.pedantic(
        run_multitype_containment,
        kwargs={
            "num_nodes": 2048, "num_sections": 256,
            "type_bits": type_bits, "until": 200.0,
        },
        rounds=1, iterations=1,
    )
    print(f"\n=== Ablation: {res.num_types} platform types — worm confined to "
          f"{res.infected}/{res.vulnerable} vulnerable nodes ===")
    # Containment holds regardless of the number of types.
    assert res.containment_fraction < 0.1
