"""Benchmark-suite configuration.

Every benchmark regenerates one paper table/figure at a reduced scale
(see DESIGN.md §3 for the full-scale parameters) and prints the same
rows the paper plots.  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_PAPER_SCALE=1`` to run the full paper-scale configurations
(minutes to hours, see EXPERIMENTS.md for recorded results).
"""

import os

import pytest

PAPER_SCALE = bool(int(os.environ.get("REPRO_PAPER_SCALE", "0")))


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return PAPER_SCALE
