"""Figure 6: DHT get/put latency — DHash vs. the three VerDi variants.

Paper shape to reproduce (gets): Fast ~ DHash < Compromise (up to ~31%
over DHash) < Secure.  Puts: every VerDi variant pays extra over DHash
(the synchronous cross-type copy / per-hop transfers), with Secure and
Compromise at the top.
"""

import pytest

from repro.analysis.tables import format_table
from repro.experiments import DhtExperimentConfig, run_dht_cell
from repro.experiments.dht_ops import DHT_SYSTEMS

BENCH_CFG = DhtExperimentConfig(
    num_nodes=400, num_sections=32, num_puts=30, num_gets=30
)

_results = {}


@pytest.mark.parametrize("system", list(DHT_SYSTEMS))
def test_fig6_cell(benchmark, system, paper_scale):
    cfg = BENCH_CFG.paper_scale() if paper_scale else BENCH_CFG
    res = benchmark.pedantic(run_dht_cell, args=(cfg, system), rounds=1, iterations=1)
    assert res.get_stats.successes > 0
    assert res.put_stats.successes > 0
    _results[system] = res


def test_fig6_report_and_shape(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    assert len(_results) == len(DHT_SYSTEMS), "cells must run first"
    rows = []
    for system, res in _results.items():
        for op, stats in (("get", res.get_stats), ("put", res.put_stats)):
            s = stats.latency_summary()
            rows.append([system, op, round(s.mean, 3), round(s.median, 3),
                         stats.successes, stats.failures])
    print("\n=== Figure 6: DHT operation latency (paper: get Fast~DHash < "
          "Compromise <= +31% < Secure; puts pay the cross-type copy) ===")
    print(format_table(
        ["system", "op", "mean_lat_s", "median_lat_s", "ops", "fails"], rows
    ))
    get = {s: r.get_stats.latency_summary().mean for s, r in _results.items()}
    put = {s: r.put_stats.latency_summary().mean for s, r in _results.items()}
    # Gets: Fast ~ DHash, Secure the most expensive.
    assert abs(get["fast-verdi"] - get["dhash"]) / get["dhash"] < 0.35
    assert get["secure-verdi"] == max(get.values())
    assert get["compromise-verdi"] > min(get["dhash"], get["fast-verdi"])
    # Puts: DHash cheapest.
    assert put["dhash"] == min(put.values())
