"""Resilience: lookup availability across a partition-and-heal scenario.

Chord (recursive) and Verme each run a lookup workload while a fifth of
the hosts is partitioned away and later healed.  Expected shape: lookup
success dips at the partition onset and recovers after the heal; ring
coherence dips during the partition; both systems reach the repair bar,
with Verme's deeper predecessor lists re-knitting the ring faster.
"""

import math

import pytest

from repro.analysis.tables import format_table
from repro.experiments import ResilienceConfig, run_resilience_cell
from repro.experiments.resilience import SYSTEMS

BENCH_CFG = ResilienceConfig()

_rows = []


@pytest.mark.parametrize("system", SYSTEMS)
def test_resilience_cell(benchmark, system, paper_scale):
    cfg = BENCH_CFG.paper_scale() if paper_scale else BENCH_CFG
    row = benchmark.pedantic(
        run_resilience_cell, args=(cfg, system), rounds=1, iterations=1
    )
    assert row.lookups > 100
    # Degrade-then-recover: the partition window is strictly worse than
    # the healthy windows around it.
    assert row.partition_success_rate < row.pre_success_rate
    assert row.post_success_rate > row.partition_success_rate
    assert row.post_success_rate > 0.95
    # The successor ring visibly tears and the detector sees it.
    assert row.min_ring_coherence < 0.9
    assert row.repair_time_s is not None
    assert row.rpc_timeouts > 0
    assert row.rpc_retransmits > 0
    assert row.partition_drops > 0
    _rows.append(row)


def test_resilience_report_and_shape(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    assert _rows, "cells must run first"
    table = format_table(
        ["system", "pre_ok", "part_ok", "post_ok", "min_coh", "repair_s",
         "timeouts", "retransmits", "part_drops", "mean_recovery_s"],
        [
            [r.system, round(r.pre_success_rate, 3),
             round(r.partition_success_rate, 3),
             round(r.post_success_rate, 3),
             round(r.min_ring_coherence, 3),
             None if r.repair_time_s is None else round(r.repair_time_s, 1),
             r.rpc_timeouts, r.rpc_retransmits, r.partition_drops,
             round(r.mean_recovery_s, 2)]
            for r in _rows
        ],
    )
    print("\n=== Resilience: partition-and-heal (expected: dip during "
          "partition, recovery after heal; Verme repairs faster) ===")
    print(table)
    by_system = {r.system: r for r in _rows}
    chord, verme = by_system["chord"], by_system["verme"]
    assert not math.isnan(chord.min_ring_coherence)
    assert verme.repair_time_s <= chord.repair_time_s
