"""Figure 7: DHT get/put bandwidth — bytes per operation.

Paper shape to reproduce: DHash ~ Fast on gets; Compromise roughly
doubles get bandwidth; Secure pays a data transfer per lookup hop;
Fast/Compromise puts add one extra cross-type copy.
"""

import pytest

from repro.analysis.tables import format_table
from repro.experiments import DhtExperimentConfig, run_dht_cell
from repro.experiments.dht_ops import DHT_SYSTEMS

BENCH_CFG = DhtExperimentConfig(
    num_nodes=400, num_sections=32, num_puts=30, num_gets=30, seed=77
)

_results = {}


@pytest.mark.parametrize("system", list(DHT_SYSTEMS))
def test_fig7_cell(benchmark, system, paper_scale):
    cfg = BENCH_CFG.paper_scale() if paper_scale else BENCH_CFG
    res = benchmark.pedantic(run_dht_cell, args=(cfg, system), rounds=1, iterations=1)
    assert res.get_stats.successes > 0
    _results[system] = res


def test_fig7_report_and_shape(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    assert len(_results) == len(DHT_SYSTEMS), "cells must run first"
    rows = []
    for system, res in _results.items():
        for op, stats in (("get", res.get_stats), ("put", res.put_stats)):
            s = stats.bytes_summary()
            rows.append([system, op, round(s.mean / 1024, 1),
                         round(s.median / 1024, 1), stats.successes])
    print("\n=== Figure 7: DHT operation bandwidth, KiB/op (paper: "
          "DHash~Fast; Compromise ~2x gets; Secure per-hop transfers; "
          "VerDi puts pay an extra copy) ===")
    print(format_table(["system", "op", "mean_KiB", "median_KiB", "ops"], rows))
    get = {s: r.get_stats.bytes_summary().mean for s, r in _results.items()}
    put = {s: r.put_stats.bytes_summary().mean for s, r in _results.items()}
    assert get["fast-verdi"] < 1.35 * get["dhash"]
    assert get["compromise-verdi"] > 1.4 * get["dhash"]
    assert get["secure-verdi"] == max(get.values())
    assert put["fast-verdi"] > 1.5 * put["dhash"]
    assert put["compromise-verdi"] > put["fast-verdi"]
    assert put["secure-verdi"] > 2.0 * put["dhash"]
