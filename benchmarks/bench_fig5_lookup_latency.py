"""Figure 5: lookup latency — Chord (transitive, recursive) vs. Verme.

Prints the mean lookup latency per (system, mean node lifetime) cell,
plus the §7.1.2 text metrics (failure rate, maintenance bandwidth).

Paper shape to reproduce: transitive Chord ~35% below Verme; recursive
Chord ~ Verme; flat across lifetimes.
"""

import pytest

from repro.analysis.tables import format_table
from repro.experiments import Fig5Config, run_cell
from repro.experiments.fig5_lookup_latency import SYSTEMS

BENCH_CFG = Fig5Config(num_nodes=150, duration_s=1200.0, warmup_s=120.0,
                       mean_lifetimes_s=(1800.0, 28800.0))

_rows = []


@pytest.mark.parametrize("lifetime", BENCH_CFG.mean_lifetimes_s)
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig5_cell(benchmark, system, lifetime, paper_scale):
    cfg = BENCH_CFG.paper_scale() if paper_scale else BENCH_CFG
    row = benchmark.pedantic(
        run_cell, args=(cfg, system, lifetime), rounds=1, iterations=1
    )
    assert row.lookups > 0
    assert row.failure_rate < 0.1
    _rows.append(row)


def test_fig5_report_and_shape(benchmark):
    """Render the figure's rows and check the paper's ordering."""
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    assert _rows, "cells must run first"
    table = format_table(
        ["system", "lifetime_s", "mean_lat_s", "median_lat_s", "hops",
         "fail_rate", "lookups", "maint_B/node/s"],
        [
            [r.system, r.mean_lifetime_s, round(r.mean_latency_s, 4),
             round(r.median_latency_s, 4), round(r.mean_hops, 2),
             round(r.failure_rate, 4), r.lookups,
             round(r.maintenance_bytes_per_node_s, 1)]
            for r in _rows
        ],
    )
    print("\n=== Figure 5: lookup latency (paper: transitive ~35% below "
          "Verme; recursive Chord ~ Verme) ===")
    print(table)
    by_system = {}
    for r in _rows:
        by_system.setdefault(r.system, []).append(r.mean_latency_s)
    mean = {s: sum(v) / len(v) for s, v in by_system.items()}
    assert mean["chord-transitive"] < mean["verme"]
    assert abs(mean["chord-recursive"] - mean["verme"]) / mean["verme"] < 0.30
