"""Fig. 5-scale lookup benchmark (``BENCH_fig5.json`` and friends).

One ``chord-recursive`` cell of the Fig. 5 experiment — ring build,
churn, lookup workload over a King-style latency model.  This covers
the layers the kernel microbenchmark does not: the network fabric, RPC
timeouts (cancellation-heavy), stabilization timers and the lookup
protocol itself.

Presets:

* ``120`` (default) — the historical regression workload: 120 nodes,
  30 simulated minutes, dense King matrix.  Gated in CI against the
  committed ``BENCH_fig5.json``.
* ``1k`` — 1000 nodes, 10 simulated minutes, on the O(n)-state
  ``KingCoordinates`` model (exercised in CI at smoke scale).
* ``10k`` — 10,000 nodes, 10 simulated minutes, ``KingCoordinates``
  (a dense matrix would need ~800 MB); writes ``BENCH_fig5_10k.json``.
* ``100k`` — 100,000 nodes, 1 simulated minute, on the columnar
  flat-array engine (the object graph runs this workload more than 5x
  slower); writes ``BENCH_fig5_100k.json``.

``--engine`` overrides the preset's engine; both engines produce
bit-identical metrics and event counts on the same preset (asserted in
CI via ``scripts/compare_bench.py --assert-equal``), so engine records
differ only in wall clock.

Usage::

    python benchmarks/perf/fig5_lookup.py                  # preset 120 (~5 s)
    python benchmarks/perf/fig5_lookup.py --preset 10k     # ~minutes
    python benchmarks/perf/fig5_lookup.py --preset 100k    # ~minutes, columnar
    python benchmarks/perf/fig5_lookup.py --smoke          # CI scale (~2 s)
"""

from __future__ import annotations

import argparse
import time

import perf_common  # noqa: E402  (sets sys.path for the repro import)

from repro.experiments import Fig5Config  # noqa: E402
from repro.experiments.fig5_lookup_latency import run_cell_instrumented  # noqa: E402
from repro.obs import OBS, collecting, flatten  # noqa: E402

SEED = 0
SYSTEM = "chord-recursive"
MEAN_LIFETIME_S = 1800.0

#: name controls the output file (BENCH_<name>.json).  The ``120``
#: preset keeps the historical record name and parameter set so
#: scripts/compare_bench.py accepts old-vs-new comparisons.
PRESETS = {
    "120": {"nodes": 120, "duration": 1800.0, "latency_model": "king-matrix",
            "name": "fig5", "engine": "object"},
    "1k": {"nodes": 1000, "duration": 600.0, "latency_model": "king-coords",
           "name": "fig5_1k", "engine": "object"},
    "10k": {"nodes": 10000, "duration": 600.0, "latency_model": "king-coords",
            "name": "fig5_10k", "engine": "object"},
    "100k": {"nodes": 100000, "duration": 60.0, "latency_model": "king-coords",
             "name": "fig5_100k", "engine": "columnar", "warmup": 5.0},
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="120",
                        help="workload scale (default 120)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the preset's node count")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the preset's simulated seconds")
    parser.add_argument("--engine", choices=("object", "columnar"), default=None,
                        help="override the preset's engine (metrics and "
                             "event counts are bit-identical either way)")
    parser.add_argument("--smoke", action="store_true",
                        help="40 nodes / 300 simulated seconds, for CI")
    parser.add_argument("--obs", action="store_true",
                        help="collect a repro.obs metrics registry during "
                             "the run and embed it (flattened) in the "
                             "record's metrics block; off by default so "
                             "gated records measure the uninstrumented "
                             "hot path")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<name>.json at repo root)")
    args = parser.parse_args(argv)
    preset = PRESETS[args.preset]
    nodes = args.nodes if args.nodes is not None else preset["nodes"]
    duration = args.duration if args.duration is not None else preset["duration"]
    latency_model = preset["latency_model"]
    name = preset["name"]
    engine = args.engine if args.engine is not None else preset["engine"]
    # Presets whose horizon is shorter than the default 120s warmup
    # (the 1-minute 100k run) shrink it so the record measures lookups.
    warmup = preset.get("warmup")
    if args.smoke:
        nodes, duration = 40, 300.0

    overrides = {} if warmup is None else {"warmup_s": warmup}
    config = Fig5Config(
        num_nodes=nodes,
        duration_s=duration,
        seed=SEED,
        latency_model=latency_model,
        engine=engine,
        **overrides,
    )
    snapshot = None
    start = time.perf_counter()
    if args.obs:
        with collecting(metrics=True):
            row, events = run_cell_instrumented(config, SYSTEM, MEAN_LIFETIME_S)
            snapshot = OBS.metrics.snapshot()
    else:
        row, events = run_cell_instrumented(config, SYSTEM, MEAN_LIFETIME_S)
    wall = time.perf_counter() - start

    parameters = {
        "system": SYSTEM,
        "num_nodes": nodes,
        "duration_s": duration,
        "mean_lifetime_s": MEAN_LIFETIME_S,
    }
    if latency_model != "king-matrix":
        # The 120 preset's parameter dict must stay exactly as committed
        # (compare_bench.py refuses to gate records whose parameters
        # differ), so only the new presets record the model choice.
        parameters["latency_model"] = latency_model
    if engine != "object":
        # Same reasoning: pre-columnar records carry no engine key, and
        # a columnar record must not gate against an object baseline.
        parameters["engine"] = engine
    if warmup is not None:
        parameters["warmup_s"] = warmup
    metrics = {
        "lookups": float(row.lookups),
        "mean_latency_s": row.mean_latency_s,
        "failure_rate": row.failure_rate,
    }
    if snapshot is not None:
        metrics.update(flatten(snapshot))
    record = perf_common.bench_record(
        name=name,
        wall_clock_s=wall,
        events=events,
        seed=SEED,
        parameters=parameters,
        metrics=metrics,
    )
    path = perf_common.write_record(record, args.out)
    print(f"fig5[{args.preset}] {nodes} nodes x {duration:.0f}s sim: "
          f"{wall:.2f}s wall, {events:,} events "
          f"({record['events_per_s']:,.0f}/s), "
          f"{row.lookups} lookups -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
