"""Fig. 5-scale lookup benchmark (``BENCH_fig5.json``).

One ``chord-recursive`` cell of the Fig. 5 experiment — ring build,
churn, lookup workload over the King latency matrix — at the default
reduced scale (120 nodes, 30 simulated minutes).  This covers the
layers the kernel microbenchmark does not: the network fabric, RPC
timeouts (cancellation-heavy), stabilization timers and the lookup
protocol itself.

Usage::

    python benchmarks/perf/fig5_lookup.py              # default (~10 s)
    python benchmarks/perf/fig5_lookup.py --smoke      # CI scale (~2 s)
"""

from __future__ import annotations

import argparse
import time

import perf_common  # noqa: E402  (sets sys.path for the repro import)

from repro.experiments import Fig5Config  # noqa: E402
from repro.experiments.fig5_lookup_latency import run_cell_instrumented  # noqa: E402

SEED = 0
SYSTEM = "chord-recursive"
MEAN_LIFETIME_S = 1800.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--duration", type=float, default=1800.0,
                        help="simulated seconds (default 1800)")
    parser.add_argument("--smoke", action="store_true",
                        help="40 nodes / 300 simulated seconds, for CI")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_fig5.json at repo root)")
    args = parser.parse_args(argv)
    nodes = 40 if args.smoke else args.nodes
    duration = 300.0 if args.smoke else args.duration

    config = Fig5Config(num_nodes=nodes, duration_s=duration, seed=SEED)
    start = time.perf_counter()
    row, events = run_cell_instrumented(config, SYSTEM, MEAN_LIFETIME_S)
    wall = time.perf_counter() - start

    record = perf_common.bench_record(
        name="fig5",
        wall_clock_s=wall,
        events=events,
        seed=SEED,
        parameters={
            "system": SYSTEM,
            "num_nodes": nodes,
            "duration_s": duration,
            "mean_lifetime_s": MEAN_LIFETIME_S,
        },
        metrics={
            "lookups": float(row.lookups),
            "mean_latency_s": row.mean_latency_s,
            "failure_rate": row.failure_rate,
        },
    )
    path = perf_common.write_record(record, args.out)
    print(f"fig5 {nodes} nodes x {duration:.0f}s sim: {wall:.2f}s wall, "
          f"{events:,} events ({record['events_per_s']:,.0f}/s), "
          f"{row.lookups} lookups -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
