"""Worm-propagation benchmarks (``BENCH_worm100k.json`` / ``BENCH_worm1m.json``).

Runs the paper's §7.3 ``chord`` scenario — the worst case for event
volume, since the worm sweeps the whole population — and reports
events/s over the complete run, population build included in wall-clock
(the build is part of what an experiment pays).  ``events`` counts
kernel events plus, for the columnar engine, the logical worm events
drained inside batch ticks, so the number is comparable across engines
and across records taken before and after the columnar rewrite.

Presets:

* ``100k`` — the paper-scale 100,000-node run (``BENCH_worm100k.json``);
* ``1m`` — a 1,000,000-node run (``BENCH_worm1m.json``), the headline
  of the columnar engine: it must finish in less wall-clock than the
  legacy engine's committed 100k record.

Usage::

    python benchmarks/perf/worm_propagation.py                 # 100k preset
    python benchmarks/perf/worm_propagation.py --preset 1m     # 1M nodes
    python benchmarks/perf/worm_propagation.py --smoke         # 5k, for CI
    python benchmarks/perf/worm_propagation.py --engine legacy # reference
"""

from __future__ import annotations

import argparse
import time

import perf_common  # noqa: E402  (sets sys.path for the repro import)

from repro.obs import OBS, collecting, flatten  # noqa: E402
from repro.worm import ENGINES, WormScenarioConfig, run_scenario  # noqa: E402

SEED = 7
HORIZON_S = 300.0  # chord saturates even 1M nodes in ~50 s; generous margin

PRESETS = {
    # name -> (record name, nodes, sections)
    "100k": ("worm100k", 100_000, 4096),
    "1m": ("worm1m", 1_000_000, 4096),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="100k")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the preset's population size")
    parser.add_argument("--sections", type=int, default=None,
                        help="override the preset's section count")
    parser.add_argument("--engine", choices=sorted(ENGINES), default="columnar")
    parser.add_argument("--smoke", action="store_true",
                        help="5000 nodes / 256 sections, for CI")
    parser.add_argument("--obs", action="store_true",
                        help="collect a repro.obs metrics registry during "
                             "the run and embed it (flattened) in the "
                             "record's metrics block; off by default so "
                             "gated records measure the uninstrumented "
                             "hot path")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<name>.json at repo root)")
    args = parser.parse_args(argv)
    name, nodes, sections = PRESETS[args.preset]
    if args.nodes is not None:
        nodes = args.nodes
    if args.sections is not None:
        sections = args.sections
    if args.smoke:
        nodes, sections = 5000, 256

    config = WormScenarioConfig(
        num_nodes=nodes, num_sections=sections, seed=SEED, engine=args.engine
    )
    snapshot = None
    start = time.perf_counter()
    if args.obs:
        with collecting(metrics=True):
            result = run_scenario("chord", config, until=HORIZON_S)
            snapshot = OBS.metrics.snapshot()
    else:
        result = run_scenario("chord", config, until=HORIZON_S)
    wall = time.perf_counter() - start
    events = result.events

    metrics = {
        "final_infected": float(result.final_infected),
        "vulnerable": float(result.vulnerable_count),
    }
    if snapshot is not None:
        metrics.update(flatten(snapshot))
    record = perf_common.bench_record(
        name=name,
        wall_clock_s=wall,
        events=events,
        seed=SEED,
        parameters={
            "scenario": "chord",
            "num_nodes": nodes,
            "num_sections": sections,
            "horizon_s": HORIZON_S,
            "engine": args.engine,
        },
        metrics=metrics,
    )
    path = perf_common.write_record(record, args.out)
    print(f"worm {nodes} nodes [{args.engine}]: {wall:.2f}s wall, "
          f"{events:,} events ({record['events_per_s']:,.0f}/s), "
          f"peak RSS {record['peak_rss_kib']:,} KiB, "
          f"{result.final_infected}/{result.vulnerable_count} infected -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
