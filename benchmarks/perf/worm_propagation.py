"""100,000-node worm-propagation benchmark (``BENCH_worm100k.json``).

Runs the paper's §7.3 ``chord`` scenario — the worst case for event
volume, since the worm sweeps the whole population — at full 100k-node
scale and reports kernel events/s over the complete run, population
build included in wall-clock (the build is part of what an experiment
pays).

Usage::

    python benchmarks/perf/worm_propagation.py             # 100k nodes
    python benchmarks/perf/worm_propagation.py --smoke     # 5k, for CI
"""

from __future__ import annotations

import argparse
import time

import perf_common  # noqa: E402  (sets sys.path for the repro import)

from repro.sim import Simulator  # noqa: E402
from repro.worm import WormScenarioConfig, run_scenario  # noqa: E402

SEED = 7
HORIZON_S = 300.0  # chord saturates 100k nodes in ~32 s; generous margin


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=100_000)
    parser.add_argument("--sections", type=int, default=4096)
    parser.add_argument("--smoke", action="store_true",
                        help="5000 nodes / 256 sections, for CI")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_worm100k.json at repo root)")
    args = parser.parse_args(argv)
    nodes = 5000 if args.smoke else args.nodes
    sections = 256 if args.smoke else args.sections

    config = WormScenarioConfig(
        num_nodes=nodes, num_sections=sections, seed=SEED
    )
    sim = Simulator()
    start = time.perf_counter()
    result = run_scenario("chord", config, until=HORIZON_S, sim=sim)
    wall = time.perf_counter() - start
    events = sim.events_processed

    record = perf_common.bench_record(
        name="worm100k",
        wall_clock_s=wall,
        events=events,
        seed=SEED,
        parameters={
            "scenario": "chord",
            "num_nodes": nodes,
            "num_sections": sections,
            "horizon_s": HORIZON_S,
        },
        metrics={
            "final_infected": float(result.final_infected),
            "vulnerable": float(result.vulnerable_count),
        },
    )
    path = perf_common.write_record(record, args.out)
    print(f"worm {nodes} nodes: {wall:.2f}s wall, "
          f"{events:,} events ({record['events_per_s']:,.0f}/s), "
          f"{result.final_infected}/{result.vulnerable_count} infected -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
