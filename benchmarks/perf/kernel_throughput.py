"""Kernel event-throughput microbenchmark (``BENCH_kernel.json``).

Three workloads exercise the event kernel the way the experiment
drivers do:

* ``chain`` — self-rescheduling callbacks through ``schedule`` (the
  cancellable-handle path protocol timers use);
* ``fastpath`` — the same chains through ``call_after`` (the
  fire-and-forget path message delivery and worm scans use);
* ``timeout`` — a schedule-then-cancel pattern per event (RPC timeout
  bookkeeping), which stresses lazy cancellation and compaction.

The headline ``events_per_s`` is the total events fired over total
wall-clock across all three, so a regression in any path moves it.

Usage::

    python benchmarks/perf/kernel_throughput.py            # full (~2 s)
    python benchmarks/perf/kernel_throughput.py --smoke    # CI (~0.2 s)
"""

from __future__ import annotations

import argparse
import time

import perf_common  # noqa: E402  (sets sys.path for the repro import)

from repro.sim import Simulator  # noqa: E402


def bench_chain(n_events: int, chains: int = 64) -> tuple[float, int]:
    sim = Simulator()
    remaining = [n_events]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(0.001, tick)

    for _ in range(chains):
        sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, sim.events_processed


def bench_fastpath(n_events: int, chains: int = 64) -> tuple[float, int]:
    sim = Simulator()
    remaining = [n_events]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.call_after(0.001, tick)

    for _ in range(chains):
        sim.call_after(0.0, tick)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, sim.events_processed


def bench_timeout(n_events: int) -> tuple[float, int]:
    sim = Simulator()
    remaining = [n_events]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            handle = sim.schedule(10.0, tick)  # a timeout that never fires
            handle.cancel()
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, sim.events_processed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=200_000,
                        help="events per workload (default 200000)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scale for CI (20000 events)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_kernel.json at repo root)")
    args = parser.parse_args(argv)
    n = 20_000 if args.smoke else args.events

    chain_s, chain_ev = bench_chain(n)
    fast_s, fast_ev = bench_fastpath(n)
    timeout_s, timeout_ev = bench_timeout(n)

    total_s = chain_s + fast_s + timeout_s
    total_ev = chain_ev + fast_ev + timeout_ev
    record = perf_common.bench_record(
        name="kernel",
        wall_clock_s=total_s,
        events=total_ev,
        seed=0,  # the workload is deterministic; no RNG involved
        parameters={"events_per_workload": n, "chains": 64},
        metrics={
            "chain_events_per_s": chain_ev / chain_s,
            "fastpath_events_per_s": fast_ev / fast_s,
            "timeout_events_per_s": timeout_ev / timeout_s,
        },
    )
    path = perf_common.write_record(record, args.out)
    print(f"kernel: {record['events_per_s']:,.0f} events/s "
          f"(chain {chain_ev / chain_s:,.0f}, fastpath {fast_ev / fast_s:,.0f}, "
          f"timeout {timeout_ev / timeout_s:,.0f})  -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
