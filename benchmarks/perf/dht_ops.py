"""DHT-operation benchmark over the VerDi variants (``BENCH_dht_ops.json``).

Runs one put/get workload cell per VerDi variant — Fast, Secure and
Compromise — on the GT-ITM transit-stub topology (scalar host models,
so node count is memory-bounded only by the overlay itself).  This is
the perf companion to Figures 6/7: it exercises the DHT layers, the
bandwidth-delayed network path and the per-operation byte tagging that
the Fig. 5 lookup benchmark does not touch.

Usage::

    python benchmarks/perf/dht_ops.py              # default (~10 s)
    python benchmarks/perf/dht_ops.py --smoke      # CI scale
    python benchmarks/perf/dht_ops.py --nodes 1000 # bigger ring
"""

from __future__ import annotations

import argparse
import time

import perf_common  # noqa: E402  (sets sys.path for the repro import)

from repro.experiments.dht_ops import (  # noqa: E402
    DhtExperimentConfig,
    run_dht_cell_instrumented,
)

SEED = 0
VERDI_SYSTEMS = ("fast-verdi", "secure-verdi", "compromise-verdi")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--sections", type=int, default=32)
    parser.add_argument("--ops", type=int, default=40,
                        help="puts and gets per system (default 40 each)")
    parser.add_argument("--smoke", action="store_true",
                        help="120 nodes / 16 sections / 20 ops, for CI")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_dht_ops.json at repo root)")
    args = parser.parse_args(argv)
    nodes = 120 if args.smoke else args.nodes
    sections = 16 if args.smoke else args.sections
    ops = 20 if args.smoke else args.ops

    config = DhtExperimentConfig(
        num_nodes=nodes,
        num_sections=sections,
        num_puts=ops,
        num_gets=ops,
        seed=SEED,
    )
    total_events = 0
    metrics = {}
    start = time.perf_counter()
    for system in VERDI_SYSTEMS:
        result, events = run_dht_cell_instrumented(config, system)
        total_events += events
        get_lat = result.get_stats.latency_summary()
        put_lat = result.put_stats.latency_summary()
        metrics[f"{system}_get_mean_latency_s"] = get_lat.mean
        metrics[f"{system}_put_mean_latency_s"] = put_lat.mean
        metrics[f"{system}_failures"] = float(
            result.get_stats.failures + result.put_stats.failures
        )
    wall = time.perf_counter() - start

    record = perf_common.bench_record(
        name="dht_ops",
        wall_clock_s=wall,
        events=total_events,
        seed=SEED,
        parameters={
            "systems": list(VERDI_SYSTEMS),
            "num_nodes": nodes,
            "num_sections": sections,
            "num_puts": ops,
            "num_gets": ops,
        },
        metrics=metrics,
    )
    path = perf_common.write_record(record, args.out)
    print(f"dht_ops {nodes} nodes x {len(VERDI_SYSTEMS)} systems x "
          f"{2 * ops} ops: {wall:.2f}s wall, {total_events:,} events "
          f"({record['events_per_s']:,.0f}/s) -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
