"""Overload-serving benchmark (``BENCH_overload.json``).

Both admission-policy arms of the overload experiment
(:mod:`repro.experiments.overload`): a Zipf flash crowd against
capacity-limited nodes, shed (token bucket + queue-depth admission)
versus the unbounded no-shedding control.  The record's metrics block
carries the serving-quality numbers the experiment exists to produce —
p99/p999 tail latency and windowed goodput per policy — so the CI gate
catches both wall-clock and serving-quality regressions.

``--engine`` overrides the default object engine; both engines produce
bit-identical metrics and event counts (asserted in CI via
``scripts/compare_bench.py --assert-equal``), so engine records differ
only in wall clock.

Usage::

    python benchmarks/perf/overload.py               # default scale (~15 s)
    python benchmarks/perf/overload.py --smoke       # CI scale (~2 s)
"""

from __future__ import annotations

import argparse
import time
from dataclasses import replace

import perf_common  # noqa: E402  (sets sys.path for the repro import)

from repro.experiments.overload import (  # noqa: E402
    POLICIES,
    OverloadConfig,
    run_overload_cell,
    smoke_config,
)

SEED = 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the node count")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the simulated seconds")
    parser.add_argument("--engine", choices=("object", "columnar"),
                        default=None,
                        help="override the engine (metrics and event "
                             "counts are bit-identical either way)")
    parser.add_argument("--smoke", action="store_true",
                        help="40 nodes / 240 simulated seconds, for CI")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_overload.json "
                             "at repo root)")
    args = parser.parse_args(argv)
    config = smoke_config() if args.smoke else OverloadConfig(seed=SEED)
    if args.nodes is not None:
        config = replace(config, num_nodes=args.nodes)
    if args.duration is not None:
        config = replace(config, duration_s=args.duration)
    engine = args.engine if args.engine is not None else config.engine
    config = replace(config, engine=engine)

    rows = {}
    events = 0
    start = time.perf_counter()
    for policy in POLICIES:
        row, cell_events = run_overload_cell(config, policy)
        rows[policy] = row
        events += cell_events
    wall = time.perf_counter() - start

    parameters = {
        "system": config.system,
        "num_nodes": config.num_nodes,
        "duration_s": config.duration_s,
        "workload": config.workload,
        "overload": config.overload,
        "service_rate_per_s": config.service_rate_per_s,
    }
    if engine != "object":
        # An engine record must not gate against an object baseline
        # (compare_bench.py refuses records whose parameters differ).
        parameters["engine"] = engine
    metrics = {}
    for policy, row in rows.items():
        metrics[f"{policy}.lookups"] = float(row.lookups)
        metrics[f"{policy}.successes"] = float(row.successes)
        metrics[f"{policy}.shed_rate"] = float(row.shed_rate)
        metrics[f"{policy}.shed_queue"] = float(row.shed_queue)
        metrics[f"{policy}.p99_latency_s"] = row.p99_latency_s
        metrics[f"{policy}.p999_latency_s"] = row.p999_latency_s
        metrics[f"{policy}.goodput_pre_per_s"] = row.goodput_pre_per_s
        metrics[f"{policy}.goodput_overload_per_s"] = row.goodput_overload_per_s
        metrics[f"{policy}.goodput_post_per_s"] = row.goodput_post_per_s
    record = perf_common.bench_record(
        name="overload",
        wall_clock_s=wall,
        events=events,
        seed=config.seed,
        parameters=parameters,
        metrics=metrics,
    )
    path = perf_common.write_record(record, args.out)
    shed = rows["shed"]
    print(f"overload {config.num_nodes} nodes x {config.duration_s:.0f}s sim "
          f"x {len(POLICIES)} policies: {wall:.2f}s wall, {events:,} events "
          f"({record['events_per_s']:,.0f}/s), shed p99 "
          f"{shed.p99_latency_s:.2f}s -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
