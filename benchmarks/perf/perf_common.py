"""Shared plumbing for the perf-regression suite.

Each benchmark in this directory is a standalone CLI that runs one
workload, measures it, and writes a ``BENCH_<name>.json`` record at the
repository root (override with ``--out``).  The record schema is what
``scripts/compare_bench.py`` diffs and CI validates:

* ``name`` — benchmark identity; only same-name records compare;
* ``schema_version`` — bump when fields change incompatibly;
* ``wall_clock_s`` / ``events`` / ``events_per_s`` — the measurements
  (``events`` is the kernel's ``events_processed`` delta);
* ``peak_rss_kib`` — ``ru_maxrss`` of the process, KiB on Linux;
* ``seed`` — the experiment seed, so a record pins a reproducible run;
* ``machine`` — fingerprint (platform, python, CPU count) so
  cross-machine diffs can be recognised and discounted;
* ``parameters`` — the workload knobs; records with different
  parameters are not comparable and ``compare_bench.py`` refuses them.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parents[2]

# Allow running straight from a checkout without installing the package.
if "repro" not in sys.modules:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA_VERSION = 1

#: Field name -> required type(s) for schema validation.
SCHEMA_FIELDS: Dict[str, tuple] = {
    "name": (str,),
    "schema_version": (int,),
    "wall_clock_s": (float, int),
    "events": (int,),
    "events_per_s": (float, int),
    "peak_rss_kib": (int,),
    "seed": (int,),
    "machine": (dict,),
    "parameters": (dict,),
}


def machine_fingerprint() -> Dict[str, Any]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def peak_rss_kib() -> int:
    """High-water resident set size of this process (KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        rss //= 1024
    return int(rss)


def bench_record(
    name: str,
    wall_clock_s: float,
    events: int,
    seed: int,
    parameters: Dict[str, Any],
    metrics: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-conforming benchmark record."""
    record: Dict[str, Any] = {
        "name": name,
        "schema_version": SCHEMA_VERSION,
        "wall_clock_s": wall_clock_s,
        "events": events,
        "events_per_s": events / wall_clock_s if wall_clock_s > 0 else 0.0,
        "peak_rss_kib": peak_rss_kib(),
        "seed": seed,
        "machine": machine_fingerprint(),
        "parameters": parameters,
    }
    if metrics:
        record["metrics"] = metrics
    return record


def validate_record(record: Any) -> None:
    """Raise ``ValueError`` if ``record`` does not match the schema."""
    if not isinstance(record, dict):
        raise ValueError("benchmark record must be a JSON object")
    for field, types in SCHEMA_FIELDS.items():
        if field not in record:
            raise ValueError(f"missing required field {field!r}")
        if not isinstance(record[field], types) or isinstance(record[field], bool):
            raise ValueError(
                f"field {field!r} has type {type(record[field]).__name__}, "
                f"expected {' or '.join(t.__name__ for t in types)}"
            )
    if record["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {record['schema_version']} != {SCHEMA_VERSION}"
        )
    if record["wall_clock_s"] <= 0:
        raise ValueError("wall_clock_s must be positive")


def write_record(record: Dict[str, Any], out: Optional[str] = None) -> Path:
    """Write the record (default: ``BENCH_<name>.json`` at repo root)."""
    validate_record(record)
    path = Path(out) if out else REPO_ROOT / f"BENCH_{record['name']}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


class Timer:
    """``with Timer() as t: ...; t.elapsed`` — wall clock, monotonic."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
