"""Figure 8: simulated worm propagation speeds — the headline result.

Paper values at full scale (100k nodes, 4096 sections): Chord infects
everything in ~32 s; Verme stays inside one ~24-node section;
Secure-VerDi + impersonator reaches ~352 nodes; Fast-VerDi needs ~160 s
and Compromise-VerDi ~1600 s to infect half the vulnerable population.
At this benchmark's reduced scale the *ordering* and the ~10x
Fast-vs-Compromise gap still reproduce; EXPERIMENTS.md records our
full-scale numbers (142 s / 1400 s / 28 / 288).
"""

import pytest

from repro.analysis.tables import format_table
from repro.experiments import Fig8Config
from repro.experiments.fig8_worm_propagation import run_fig8_scenario
from repro.worm import SCENARIOS, WormScenarioConfig

BENCH_CFG = Fig8Config(
    scenario_config=WormScenarioConfig(num_nodes=4000, num_sections=256, seed=13),
    runs=2,
    horizons={
        "chord": 120.0,
        "verme": 120.0,
        "verme-secure": 120.0,
        "verme-fast": 2000.0,
        "verme-compromise": 20000.0,
    },
)

_rows = {}


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig8_scenario(benchmark, scenario, paper_scale):
    cfg = BENCH_CFG.paper_scale() if paper_scale else BENCH_CFG
    row, _curves = benchmark.pedantic(
        run_fig8_scenario, args=(cfg, scenario), rounds=1, iterations=1
    )
    _rows[scenario] = row


def test_fig8_report_and_shape(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    assert len(_rows) == len(SCENARIOS), "scenarios must run first"
    table = format_table(
        ["scenario", "population", "vulnerable", "final_infected",
         "t10%_s", "t50%_s", "t95%_s"],
        [
            [r.scenario, r.population, r.vulnerable, r.final_infected,
             None if r.time_to_10pct_s is None else round(r.time_to_10pct_s, 1),
             None if r.time_to_50pct_s is None else round(r.time_to_50pct_s, 1),
             None if r.time_to_95pct_s is None else round(r.time_to_95pct_s, 1)]
            for r in _rows.values()
        ],
    )
    print("\n=== Figure 8: worm propagation (paper @100k: chord ~32s total; "
          "verme 1 section; secure ~352 nodes; fast t50 ~160s; "
          "compromise t50 ~1600s) ===")
    print(table)
    chord, verme = _rows["chord"], _rows["verme"]
    secure = _rows["verme-secure"]
    fast, comp = _rows["verme-fast"], _rows["verme-compromise"]
    # Chord sweeps the vulnerable population quickly.
    assert chord.final_infected >= 0.95 * chord.vulnerable
    assert chord.time_to_95pct_s is not None and chord.time_to_95pct_s < 60
    # Verme contains to ~one section.
    section_avg = verme.population / BENCH_CFG.scenario_config.num_sections
    assert verme.final_infected <= 3 * section_avg
    # Secure-VerDi impersonation: logarithmic number of sections.
    assert verme.final_infected < secure.final_infected
    assert secure.final_infected < 0.15 * secure.vulnerable
    # Fast and Compromise eventually spread, Compromise ~an order slower.
    assert fast.time_to_95pct_s is not None
    assert comp.time_to_95pct_s is not None
    assert comp.time_to_95pct_s > 3 * fast.time_to_95pct_s
